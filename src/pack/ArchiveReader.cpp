//===- ArchiveReader.cpp - lazy reader for v3 archives --------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/ArchiveReader.h"
#include "pack/Materialize.h"
#include "pack/Preload.h"
#include "pack/Streams.h"
#include "pack/Transcode.h"
#include "support/VarInt.h"

using namespace cjpack;

/// One shard's decode state, built lazily from its blob. Heap-allocated
/// and never moved, so the DecodeContext's references into it stay
/// valid for the reader's lifetime.
struct PackedArchiveReader::ShardState {
  /// Serializes preparation, decode, and materialization against this
  /// shard: the adaptive coder state is sequential by construction and
  /// materialization reads the model another decode could be growing.
  std::mutex Mu;
  /// True once prepareShardLocked ran (successfully or not).
  bool Prepared = false;
  StreamSet S;
  Model M;
  std::unique_ptr<RefDecoder> Dec;
  std::unique_ptr<DecodeContext> Ctx;
  std::unique_ptr<Transcriber<DecodeContext>> T;
  /// Decoded record prefix; Recs[i] is the class at ordinal i.
  std::vector<ClassRec> Recs;
  /// Class count the shard's own directory declares.
  size_t Declared = 0;
  /// Latched first failure. The adaptive coder state is unrecoverable
  /// mid-stream, so every later request sees the same error.
  Error Fail;
};

PackedArchiveReader::PackedArchiveReader() = default;
PackedArchiveReader::PackedArchiveReader(PackedArchiveReader &&) noexcept =
    default;
PackedArchiveReader &
PackedArchiveReader::operator=(PackedArchiveReader &&) noexcept = default;
PackedArchiveReader::~PackedArchiveReader() = default;

Expected<PackedArchiveReader>
PackedArchiveReader::open(const std::vector<uint8_t> &Archive,
                          const DecodeLimits &Limits) {
  return open(Archive.data(), Archive.size(), Limits);
}

Expected<PackedArchiveReader>
PackedArchiveReader::open(const uint8_t *Data, size_t Size,
                          const DecodeLimits &Limits) {
  PackedArchiveReader Rd;
  Rd.Data = Data;
  Rd.Size = Size;
  Rd.Limits = Limits;
  Rd.Budget.reset(new DecodeBudget(Limits));
  Rd.StatesMu.reset(new std::mutex());

  ByteReader R(Data, Size);
  if (R.readU4() != 0x434A504Bu)
    return makeError(R.hasError() ? ErrorCode::Truncated
                                  : ErrorCode::Corrupt,
                     "reader: bad magic");
  uint8_t Version = R.readU1();
  uint8_t SchemeByte = R.readU1();
  uint8_t Flags = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "reader: truncated archive header");
  if (Version == FormatVersionSerial || Version == FormatVersionSharded)
    return makeError(ErrorCode::VersionMismatch,
                     "reader: version " + std::to_string(Version) +
                         " archive has no index; decode it with "
                         "unpackClasses");
  if (Version != FormatVersionIndexed)
    return makeError(ErrorCode::VersionMismatch,
                     "reader: unsupported format version " +
                         std::to_string(Version));
  if (SchemeByte > static_cast<uint8_t>(RefScheme::MtfTransientsContext))
    return makeError(ErrorCode::Corrupt,
                     "reader: unknown reference scheme");
  if (((Flags >> BackendFlagShift) & BackendFlagMask) > ArchiveBackendMixed)
    return makeError(ErrorCode::Corrupt,
                     "reader: unknown archive backend code");
  Rd.Scheme = static_cast<RefScheme>(SchemeByte);
  Rd.Flags = Flags;

  uint64_t IndexLen = readVarUInt(R);
  if (R.hasError())
    return R.takeError("reader");
  if (IndexLen > R.remaining())
    return makeError(ErrorCode::Truncated,
                     "reader: index frame extends past end of archive");
  if (IndexLen > Limits.MaxStreamBytes)
    return makeError(ErrorCode::LimitExceeded,
                     "reader: index frame length over limit");
  ByteReader IndexR(Data + R.position(), static_cast<size_t>(IndexLen));
  auto Idx = ArchiveIndex::deserialize(IndexR, Limits);
  if (!Idx)
    return Idx.takeError();
  Rd.Index = std::move(*Idx);
  R.skip(static_cast<size_t>(IndexLen));

  // The dictionary frame is self-describing; a compressed one is the
  // only inflate open() ever charges.
  ByteReader DictR(Data + R.position(), R.remaining());
  auto Dict = SharedDictionary::deserialize(DictR, Limits, Rd.Budget.get());
  if (!Dict)
    return Dict.takeError();
  Rd.Dict = std::move(*Dict);
  Rd.BlobBase = R.position() + DictR.position();

  // The shard extents must tile the remainder of the archive exactly;
  // the index already proved them contiguous from zero.
  uint64_t BlobBytes = Rd.Index.blobBytes();
  uint64_t Region = Size - Rd.BlobBase;
  if (BlobBytes > Region)
    return makeError(ErrorCode::Truncated,
                     "reader: shard blobs extend past end of archive");
  if (BlobBytes < Region)
    return makeError(ErrorCode::Corrupt,
                     "reader: trailing bytes after shard blobs");

  Rd.States.resize(Rd.Index.Shards.size());
  return Rd;
}

PackedArchiveReader::ShardState *PackedArchiveReader::shardSlot(size_t K) {
  std::lock_guard<std::mutex> Lock(*StatesMu);
  if (!States[K])
    States[K].reset(new ShardState());
  return States[K].get();
}

Error PackedArchiveReader::prepareShardLocked(ShardState &St, size_t K) {
  const ArchiveIndex::ShardExtent &E = Index.Shards[K];
  ByteReader R(Data + BlobBase + E.Offset, static_cast<size_t>(E.Length));
  if (auto Err = St.S.deserialize(R, Limits, Budget.get()))
    return Err;
  if (!R.atEnd())
    return makeError(ErrorCode::Corrupt,
                     "reader: trailing bytes in shard blob");
  St.Dec = makeRefDecoder(Scheme);
  if (Flags & 4)
    if (!preloadStandardRefs(St.M, *St.Dec, Scheme))
      return makeError(ErrorCode::Corrupt,
                       "reader: archive needs preloaded references "
                       "the scheme cannot provide");
  if (!Dict.empty() && !preloadDictionary(St.M, *St.Dec, Dict))
    return makeError(ErrorCode::Corrupt,
                     "reader: archive dictionary needs a scheme "
                     "that supports preloaded references");
  St.Ctx.reset(new DecodeContext{St.M, *St.Dec, St.S, Scheme, Limits});
  St.T.reset(new Transcriber<DecodeContext>(*St.Ctx));
  return St.T->beginArchive(St.Declared);
}

Error PackedArchiveReader::decodeUpTo(ShardState &St, uint32_t Ordinal) {
  while (St.Recs.size() <= Ordinal) {
    ClassRec R;
    if (auto E = St.T->transcodeOneClass(R)) {
      St.Fail = E;
      return E;
    }
    St.Recs.push_back(std::move(R));
  }
  return Error::success();
}

Expected<ClassFile>
PackedArchiveReader::materializeEntry(const ArchiveIndex::ClassEntry &E) {
  ShardState &St = *shardSlot(E.Shard);
  // Hold the shard lock through materialization: another thread's
  // decodeUpTo on this shard grows St.M and St.Recs, which
  // materializeClass reads.
  std::lock_guard<std::mutex> Lock(St.Mu);
  if (!St.Prepared) {
    St.Fail = prepareShardLocked(St, E.Shard);
    St.Prepared = true;
  }
  if (St.Fail)
    return St.Fail;
  if (E.Ordinal >= St.Declared)
    return makeError(ErrorCode::Corrupt,
                     "reader: index claims more classes than the shard "
                     "directory declares");
  if (auto Err = decodeUpTo(St, E.Ordinal))
    return Err;
  const ClassRec &Rec = St.Recs[E.Ordinal];
  if (St.M.classRefInternalName(Rec.ThisId) != E.Name)
    return makeError(ErrorCode::Corrupt,
                     "reader: index entry '" + E.Name +
                         "' names a different class");
  return materializeClass(St.M, Rec);
}

Expected<ClassFile>
PackedArchiveReader::unpackClass(const std::string &InternalName) {
  const ArchiveIndex::ClassEntry *E = Index.find(InternalName);
  if (!E)
    return Error::failure("reader: class '" + InternalName +
                          "' not in archive index");
  return materializeEntry(*E);
}

Expected<std::vector<ClassFile>> PackedArchiveReader::unpackAll() {
  std::vector<ClassFile> Out;
  Out.reserve(Index.Classes.size());
  for (const ArchiveIndex::ClassEntry &E : Index.Classes) {
    auto CF = materializeEntry(E);
    if (!CF)
      return CF.takeError();
    Out.push_back(std::move(*CF));
  }
  return Out;
}

std::vector<std::string> PackedArchiveReader::classNames() const {
  std::vector<std::string> Names;
  Names.reserve(Index.Classes.size());
  for (const ArchiveIndex::ClassEntry &E : Index.Classes)
    Names.push_back(E.Name);
  return Names;
}

uint64_t PackedArchiveReader::inflatedBytes() const {
  return Budget->inflateSpent();
}
