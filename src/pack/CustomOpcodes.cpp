//===- CustomOpcodes.cpp - digram custom opcodes (§7.2) -------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/CustomOpcodes.h"
#include <cassert>
#include <cmath>
#include <map>

using namespace cjpack;

namespace {

/// Shannon-entropy estimate of the whole stream in bits: each symbol of
/// frequency p is charged log2(1/p).
double estimateBits(const std::vector<uint16_t> &Stream) {
  std::map<uint16_t, size_t> Counts;
  for (uint16_t S : Stream)
    ++Counts[S];
  double Total = static_cast<double>(Stream.size());
  double Bits = 0;
  for (const auto &[Sym, N] : Counts)
    Bits += static_cast<double>(N) *
            std::log2(Total / static_cast<double>(N));
  return Bits;
}

struct Candidate {
  uint16_t First = 0;
  uint16_t Second = 0;
  bool Skip = false;
  size_t Count = 0;
  double Savings = 0;
};

/// Finds the adjacent pair or skip-pair with the best estimated savings.
Candidate bestCandidate(const std::vector<uint16_t> &Stream) {
  std::map<uint16_t, size_t> Counts;
  for (uint16_t S : Stream)
    ++Counts[S];
  double Total = static_cast<double>(Stream.size());
  auto BitsOf = [&](uint16_t S) {
    return std::log2(Total / static_cast<double>(Counts[S]));
  };

  // Non-overlapping occurrence counts, scanned left to right the same
  // way the rewrite pass will consume them.
  std::map<std::pair<uint16_t, uint16_t>, size_t> Pairs;
  for (size_t I = 0; I + 1 < Stream.size();) {
    auto Key = std::make_pair(Stream[I], Stream[I + 1]);
    ++Pairs[Key];
    I += 1; // approximate: exact non-overlap is recomputed on rewrite
  }
  std::map<std::pair<uint16_t, uint16_t>, size_t> SkipPairs;
  for (size_t I = 0; I + 2 < Stream.size(); ++I)
    ++SkipPairs[{Stream[I], Stream[I + 2]}];

  Candidate Best;
  auto Consider = [&](uint16_t A, uint16_t B, bool Skip, size_t Count) {
    if (Count < 2)
      return;
    // Replacing Count occurrences of (A, B) by a fresh opcode: the pair
    // cost BitsOf(A)+BitsOf(B) each; the new opcode will occur with
    // frequency Count/Total and cost about log2(Total/Count).
    double NewBits = std::log2(Total / static_cast<double>(Count));
    double Savings =
        static_cast<double>(Count) * (BitsOf(A) + BitsOf(B) - NewBits);
    if (Savings > Best.Savings) {
      Best = {A, B, Skip, Count, Savings};
    }
  };
  for (const auto &[Key, Count] : Pairs)
    Consider(Key.first, Key.second, false, Count);
  for (const auto &[Key, Count] : SkipPairs)
    Consider(Key.first, Key.second, true, Count);
  return Best;
}

/// Rewrites non-overlapping occurrences of the candidate with \p Code.
std::vector<uint16_t> rewrite(const std::vector<uint16_t> &Stream,
                              const Candidate &C, uint16_t Code) {
  std::vector<uint16_t> Out;
  Out.reserve(Stream.size());
  size_t I = 0;
  while (I < Stream.size()) {
    if (!C.Skip && I + 1 < Stream.size() && Stream[I] == C.First &&
        Stream[I + 1] == C.Second) {
      Out.push_back(Code);
      I += 2;
    } else if (C.Skip && I + 2 < Stream.size() && Stream[I] == C.First &&
               Stream[I + 2] == C.Second) {
      Out.push_back(Code);
      Out.push_back(Stream[I + 1]);
      I += 3;
    } else {
      Out.push_back(Stream[I]);
      I += 1;
    }
  }
  return Out;
}

} // namespace

CustomOpcodeResult
cjpack::buildCustomOpcodes(const std::vector<uint8_t> &Opcodes,
                           unsigned MaxNewOps, uint16_t FirstNewSymbol) {
  CustomOpcodeResult Result;
  Result.Stream.assign(Opcodes.begin(), Opcodes.end());
  Result.EstimatedBitsBefore = estimateBits(Result.Stream);
  for (unsigned K = 0; K < MaxNewOps; ++K) {
    if (Result.Stream.size() < 4)
      break;
    Candidate C = bestCandidate(Result.Stream);
    if (C.Savings <= 0)
      break;
    uint16_t Code = static_cast<uint16_t>(FirstNewSymbol + K);
    Result.Stream = rewrite(Result.Stream, C, Code);
    Result.Codebook.push_back({Code, C.First, C.Second, C.Skip});
  }
  Result.EstimatedBitsAfter = estimateBits(Result.Stream);
  return Result;
}

std::vector<uint8_t> cjpack::expandCustomOpcodes(
    const std::vector<uint16_t> &Stream,
    const std::vector<CustomOp> &Codebook, uint16_t FirstNewSymbol) {
  // Undo the introductions newest-first; each is a stream-level inverse
  // of rewrite().
  std::vector<uint16_t> Cur = Stream;
  for (auto It = Codebook.rbegin(); It != Codebook.rend(); ++It) {
    std::vector<uint16_t> Next;
    Next.reserve(Cur.size() * 2);
    for (size_t I = 0; I < Cur.size();) {
      if (Cur[I] == It->Code) {
        Next.push_back(It->First);
        if (It->Skip) {
          assert(I + 1 < Cur.size() && "skip-pair missing middle symbol");
          Next.push_back(Cur[I + 1]);
          ++I;
        }
        Next.push_back(It->Second);
        ++I;
      } else {
        Next.push_back(Cur[I]);
        ++I;
      }
    }
    Cur = std::move(Next);
  }
  std::vector<uint8_t> Out;
  Out.reserve(Cur.size());
  for (uint16_t S : Cur) {
    assert(S < FirstNewSymbol && "unexpanded custom opcode");
    (void)FirstNewSymbol;
    Out.push_back(static_cast<uint8_t>(S));
  }
  return Out;
}
