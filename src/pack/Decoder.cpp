//===- Decoder.cpp - packed archive decoder -------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The decoder mirrors the encoder's preorder traversal exactly: the same
// streams are read in the same order, the same approximate stack state
// machine resolves collapsed pseudo-opcodes, and the reference decoder's
// queues evolve in lock step with the encoder's. Classfile
// reconstruction assigns int/float/string constants the smallest
// constant-pool indices so every ldc operand fits in one byte (§9), then
// canonicalizes the pool, making decompression deterministic (§12).
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowState.h"
#include "bytecode/Instruction.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "pack/CodeCommon.h"
#include "pack/Dictionary.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include "zip/Manifest.h"
#include "support/ThreadPool.h"
#include "support/VarInt.h"
#include <optional>

using namespace cjpack;

namespace {

struct DecodedConst {
  ConstKind Kind = ConstKind::None;
  int64_t IntValue = 0;
  uint64_t RawBits = 0;
  uint32_t Id = 0;
};

struct DecodedCode {
  uint32_t MaxStack = 0;
  uint32_t MaxLocals = 0;
  struct Exc {
    uint32_t StartPc, EndPc, HandlerPc;
    bool HasCatch = false;
    uint32_t CatchClass = 0;
  };
  std::vector<Exc> Table;
  std::vector<Insn> Insns;
  std::vector<CodeOperand> Operands; ///< parallel to Insns
};

struct DecodedField {
  uint32_t Flags = 0;
  uint32_t RefId = 0;
  DecodedConst Const;
};

struct DecodedMethod {
  uint32_t Flags = 0;
  uint32_t RefId = 0;
  std::vector<uint32_t> Exceptions;
  std::optional<DecodedCode> Code;
};

struct DecodedClass {
  uint32_t MinorVersion = 0, MajorVersion = 0;
  uint32_t Flags = 0;
  uint32_t ThisId = 0;
  bool HasSuper = false;
  uint32_t SuperId = 0;
  std::vector<uint32_t> Interfaces;
  std::vector<DecodedField> Fields;
  std::vector<DecodedMethod> Methods;
};

class ArchiveReader {
public:
  ArchiveReader(Model &M, RefDecoder &Dec, StreamSet &S, RefScheme Scheme,
                const DecodeLimits &Limits)
      : M(M), Dec(Dec), S(S), Scheme(Scheme), Limits(Limits) {}

  Expected<std::vector<DecodedClass>> decodeArchive() {
    ByteReader &Counts = S.in(StreamId::Counts);
    size_t Count = static_cast<size_t>(readVarUInt(Counts));
    if (Counts.hasError())
      return Counts.takeError("unpack");
    if (Count > Limits.MaxClasses)
      return makeError(ErrorCode::LimitExceeded,
                       "unpack: class count over limit");
    // Every class costs at least five varint bytes from the Counts
    // stream (versions plus three member counts), so a count the stream
    // cannot hold is corrupt before anything is reserved.
    if (Count * 5 > Counts.remaining())
      return makeError(ErrorCode::Corrupt,
                       "unpack: class count exceeds stream size");
    std::vector<DecodedClass> Out;
    Out.reserve(Count);
    for (size_t I = 0; I < Count; ++I) {
      auto DC = decodeClass();
      if (!DC)
        return DC.takeError();
      if (Latch)
        return std::move(Latch);
      Out.push_back(std::move(*DC));
    }
    return Out;
  }

private:
  //===--------------------------------------------------------------===//
  // Reference decoding with inline definitions
  //===--------------------------------------------------------------===//

  /// Records the first wire-validation failure. The readers keep
  /// returning in-bounds poison objects after a failure so downstream
  /// model lookups stay safe; the next structural checkpoint aborts the
  /// decode with this error.
  void fail(ErrorCode Code, std::string Msg) {
    if (!Latch)
      Latch = makeError(Code, std::move(Msg));
  }

  /// An always-valid class-ref id used after a validation failure. The
  /// non-'L' base means nothing downstream indexes the string pools.
  uint32_t poisonClass() {
    MClassRef Void;
    Void.Base = 'V';
    return M.appendClassRef(Void);
  }

  std::string readString(StreamId Chars) {
    size_t Len =
        static_cast<size_t>(readVarUInt(S.in(StreamId::StringLengths)));
    if (Len > Limits.MaxStringBytes) {
      fail(ErrorCode::LimitExceeded, "unpack: string length over limit");
      return std::string();
    }
    return S.in(Chars).readString(Len);
  }

  uint32_t readPackage() {
    auto Existing = Dec.decode(poolId(PoolKind::Package), 0,
                               S.in(StreamId::PackageRefs));
    if (Existing) {
      if (*Existing < M.packageCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: package ref out of range");
      return M.appendPackage(std::string());
    }
    uint32_t Id = M.appendPackage(readString(StreamId::ClassNameChars));
    Dec.registerNew(poolId(PoolKind::Package), 0, Id);
    return Id;
  }

  uint32_t readSimpleName() {
    auto Existing = Dec.decode(poolId(PoolKind::SimpleName), 0,
                               S.in(StreamId::SimpleNameRefs));
    if (Existing) {
      if (*Existing < M.simpleNameCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: simple-name ref out of range");
      return M.appendSimpleName(std::string());
    }
    uint32_t Id = M.appendSimpleName(readString(StreamId::ClassNameChars));
    Dec.registerNew(poolId(PoolKind::SimpleName), 0, Id);
    return Id;
  }

  uint32_t readFieldName() {
    auto Existing = Dec.decode(poolId(PoolKind::FieldName), 0,
                               S.in(StreamId::FieldNameRefs));
    if (Existing) {
      if (*Existing < M.fieldNameCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: field-name ref out of range");
      return M.appendFieldName(std::string());
    }
    uint32_t Id = M.appendFieldName(readString(StreamId::NameChars));
    Dec.registerNew(poolId(PoolKind::FieldName), 0, Id);
    return Id;
  }

  uint32_t readMethodName() {
    auto Existing = Dec.decode(poolId(PoolKind::MethodName), 0,
                               S.in(StreamId::MethodNameRefs));
    if (Existing) {
      if (*Existing < M.methodNameCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: method-name ref out of range");
      return M.appendMethodName(std::string());
    }
    uint32_t Id = M.appendMethodName(readString(StreamId::NameChars));
    Dec.registerNew(poolId(PoolKind::MethodName), 0, Id);
    return Id;
  }

  uint32_t readStringConst() {
    auto Existing = Dec.decode(poolId(PoolKind::StringConst), 0,
                               S.in(StreamId::StringConstRefs));
    if (Existing) {
      if (*Existing < M.stringConstCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: string-const ref out of range");
      return M.appendStringConst(std::string());
    }
    uint32_t Id =
        M.appendStringConst(readString(StreamId::StringConstChars));
    Dec.registerNew(poolId(PoolKind::StringConst), 0, Id);
    return Id;
  }

  uint32_t readClass() {
    auto Existing = Dec.decode(poolId(PoolKind::ClassRefPool), 0,
                               S.in(StreamId::ClassRefs));
    if (Existing) {
      if (*Existing < M.classRefCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: class ref out of range");
      return poisonClass();
    }
    MClassRef R;
    R.Dims =
        static_cast<uint8_t>(readVarUInt(S.in(StreamId::Counts)));
    R.Base = static_cast<char>(S.in(StreamId::Counts).readU1());
    if (R.Base == 'L') {
      R.Package = readPackage();
      R.Simple = readSimpleName();
    }
    uint32_t Id = M.appendClassRef(R);
    Dec.registerNew(poolId(PoolKind::ClassRefPool), 0, Id);
    return Id;
  }

  uint32_t readFieldRef(PoolKind Pool) {
    Pool = effectivePool(Pool, Scheme);
    auto Existing =
        Dec.decode(poolId(Pool), 0, S.in(StreamId::FieldRefs));
    if (Existing) {
      if (*Existing < M.fieldRefCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: field ref out of range");
      MFieldRef P;
      P.Owner = poisonClass();
      P.Name = M.appendFieldName(std::string());
      P.Type = poisonClass();
      return M.appendFieldRef(P);
    }
    MFieldRef R;
    R.Owner = readClass();
    R.Name = readFieldName();
    R.Type = readClass();
    uint32_t Id = M.appendFieldRef(R);
    Dec.registerNew(poolId(Pool), 0, Id);
    return Id;
  }

  uint32_t readMethodRef(PoolKind Pool, uint32_t Sub) {
    Pool = effectivePool(Pool, Scheme);
    auto Existing =
        Dec.decode(poolId(Pool), Sub, S.in(StreamId::MethodRefs));
    if (Existing) {
      if (*Existing < M.methodRefCount())
        return *Existing;
      fail(ErrorCode::Corrupt, "unpack: method ref out of range");
      MMethodRef P;
      P.Owner = poisonClass();
      P.Name = M.appendMethodName(std::string());
      P.Sig.push_back(poisonClass());
      return M.appendMethodRef(std::move(P));
    }
    MMethodRef R;
    R.Owner = readClass();
    R.Name = readMethodName();
    size_t SigLen =
        static_cast<size_t>(readVarUInt(S.in(StreamId::Counts)));
    // A method has at most 255 parameter slots plus the return type;
    // anything larger is corrupt input. Clamp so a garbage varint
    // cannot drive an unbounded loop; a too-short signature gets a
    // void return so later lookups stay in bounds.
    if (SigLen > 257)
      SigLen = 257;
    R.Sig.reserve(SigLen);
    for (size_t K = 0; K < SigLen; ++K)
      R.Sig.push_back(readClass());
    if (R.Sig.empty()) {
      MClassRef Void;
      Void.Base = 'V';
      R.Sig.push_back(M.appendClassRef(Void));
    }
    uint32_t Id = M.appendMethodRef(std::move(R));
    Dec.registerNew(poolId(Pool), Sub, Id);
    return Id;
  }

  //===--------------------------------------------------------------===//
  // Structure
  //===--------------------------------------------------------------===//

  static PoolKind methodDefPool(uint32_t MethodFlags,
                                uint32_t ClassFlags) {
    if (ClassFlags & AccInterface)
      return PoolKind::MethodInterface;
    if (MethodFlags & AccStatic)
      return PoolKind::MethodStatic;
    if (MethodFlags & AccPrivate)
      return PoolKind::MethodSpecial;
    return PoolKind::MethodVirtual;
  }

  Expected<DecodedClass> decodeClass() {
    ByteReader &Counts = S.in(StreamId::Counts);
    DecodedClass DC;
    DC.MinorVersion = static_cast<uint32_t>(readVarUInt(Counts));
    DC.MajorVersion = static_cast<uint32_t>(readVarUInt(Counts));
    DC.Flags =
        static_cast<uint32_t>(readVarUInt(S.in(StreamId::Flags)));
    DC.ThisId = readClass();
    DC.HasSuper = (DC.Flags & PackedFlagAux0) != 0;
    if (DC.HasSuper)
      DC.SuperId = readClass();
    size_t IfaceCount = static_cast<size_t>(readVarUInt(Counts));
    if (Counts.hasError() || IfaceCount > 0xFFFF)
      return makeError(ErrorCode::Corrupt, "unpack: bad class header");
    for (size_t K = 0; K < IfaceCount && !Latch; ++K)
      DC.Interfaces.push_back(readClass());

    size_t FieldCount = static_cast<size_t>(readVarUInt(Counts));
    if (Counts.hasError() || FieldCount > 0xFFFF)
      return makeError(ErrorCode::Corrupt, "unpack: implausible field count");
    for (size_t K = 0; K < FieldCount && !Latch; ++K) {
      auto F = decodeField();
      if (!F)
        return F.takeError();
      DC.Fields.push_back(std::move(*F));
    }
    size_t MethodCount = static_cast<size_t>(readVarUInt(Counts));
    if (Counts.hasError() || MethodCount > 0xFFFF)
      return makeError(ErrorCode::Corrupt, "unpack: implausible method count");
    for (size_t K = 0; K < MethodCount && !Latch; ++K) {
      auto Mth = decodeMethod(DC.Flags);
      if (!Mth)
        return Mth.takeError();
      DC.Methods.push_back(std::move(*Mth));
    }
    if (Counts.hasError())
      return Counts.takeError("unpack class body");
    return DC;
  }

  Expected<DecodedField> decodeField() {
    DecodedField F;
    F.Flags = static_cast<uint32_t>(readVarUInt(S.in(StreamId::Flags)));
    PoolKind Pool = (F.Flags & AccStatic) ? PoolKind::FieldStatic
                                          : PoolKind::FieldInstance;
    F.RefId = readFieldRef(Pool);
    if (F.Flags & PackedFlagAux0) {
      VType T = M.classRefVType(M.fieldRef(F.RefId).Type);
      switch (T) {
      case VType::Int:
        F.Const.Kind = ConstKind::Int;
        F.Const.IntValue = readVarInt(S.in(StreamId::IntConsts));
        break;
      case VType::Float:
        F.Const.Kind = ConstKind::Float;
        F.Const.RawBits = S.in(StreamId::FloatConsts).readU4();
        break;
      case VType::Long:
        F.Const.Kind = ConstKind::Long;
        F.Const.RawBits = S.in(StreamId::LongConsts).readU8();
        break;
      case VType::Double:
        F.Const.Kind = ConstKind::Double;
        F.Const.RawBits = S.in(StreamId::DoubleConsts).readU8();
        break;
      case VType::Ref:
        F.Const.Kind = ConstKind::String;
        F.Const.Id = readStringConst();
        break;
      default:
        return makeError(ErrorCode::Corrupt,
                         "unpack: constant on untyped field");
      }
    }
    return F;
  }

  Expected<DecodedMethod> decodeMethod(uint32_t ClassFlags) {
    DecodedMethod DM;
    DM.Flags = static_cast<uint32_t>(readVarUInt(S.in(StreamId::Flags)));
    DM.RefId = readMethodRef(methodDefPool(DM.Flags, ClassFlags), 0);
    if (DM.Flags & PackedFlagAux1) {
      size_t N =
          static_cast<size_t>(readVarUInt(S.in(StreamId::Counts)));
      if (S.in(StreamId::Counts).hasError() || N > 0xFFFF)
        return makeError(ErrorCode::Corrupt, "unpack: bad Exceptions count");
      for (size_t K = 0; K < N && !Latch; ++K)
        DM.Exceptions.push_back(readClass());
    }
    if (DM.Flags & PackedFlagAux0) {
      auto Code = decodeCodeBlock();
      if (!Code)
        return Code.takeError();
      DM.Code = std::move(*Code);
    }
    return DM;
  }

  //===--------------------------------------------------------------===//
  // Bytecode (§7)
  //===--------------------------------------------------------------===//

  Expected<DecodedCode> decodeCodeBlock() {
    ByteReader &Counts = S.in(StreamId::Counts);
    DecodedCode DC;
    DC.MaxStack = static_cast<uint32_t>(readVarUInt(Counts));
    DC.MaxLocals = static_cast<uint32_t>(readVarUInt(Counts));
    size_t ExcCount = static_cast<size_t>(readVarUInt(Counts));
    size_t InsnCount = static_cast<size_t>(readVarUInt(Counts));
    // A code array is capped at 65535 bytes, so instruction and handler
    // counts beyond that are corrupt.
    if (Counts.hasError() || ExcCount > 0xFFFF || InsnCount > 0xFFFF)
      return makeError(ErrorCode::Corrupt, "unpack: bad code header");
    if (InsnCount > Limits.MaxMethodInsns)
      return makeError(ErrorCode::LimitExceeded,
                       "unpack: method instruction count over limit");
    // Every handler costs at least one byte from the Counts stream (the
    // catch flag), so a count the stream cannot hold is corrupt.
    if (ExcCount > Counts.remaining())
      return makeError(ErrorCode::Corrupt,
                       "unpack: exception table exceeds stream size");
    for (size_t K = 0; K < ExcCount; ++K) {
      DecodedCode::Exc E;
      ByteReader &B = S.in(StreamId::BranchOffsets);
      E.StartPc = static_cast<uint32_t>(readVarUInt(B));
      E.EndPc = E.StartPc + static_cast<uint32_t>(readVarUInt(B));
      E.HandlerPc = static_cast<uint32_t>(readVarUInt(B));
      E.HasCatch = Counts.readU1() != 0;
      if (E.HasCatch)
        E.CatchClass = readClass();
      DC.Table.push_back(E);
    }

    FlowState State;
    State.startMethod();
    for (const DecodedCode::Exc &E : DC.Table)
      State.seedHandler(E.HandlerPc);
    uint32_t Offset = 0;
    DC.Insns.reserve(InsnCount);
    DC.Operands.reserve(InsnCount);
    for (size_t K = 0; K < InsnCount; ++K) {
      if (Latch)
        return std::move(Latch);
      // Same pre-opcode merge as the encoder: forward-edge states land
      // before the pseudo-opcode at this offset is resolved.
      State.enterInsn(Offset);
      auto R = decodeInsn(Offset, State);
      if (!R)
        return R.takeError();
      Insn &I = R->first;
      I.Offset = Offset;
      I.Length = encodedLength(I, Offset);
      Offset += I.Length;
      InsnTypes Types = insnTypesFor(M, I, R->second);
      static const bool Trace = getenv("CJPACK_TRACE") != nullptr;
      if (Trace)
        fprintf(stderr, "D %u %s known=%d top=%d ctx=%u\n", I.Offset,
                opInfo(I.Opcode).Mnemonic, State.isKnown(),
                (int)State.top(), State.contextId());
      State.apply(I, &Types);
      DC.Insns.push_back(std::move(R->first));
      DC.Operands.push_back(R->second);
    }
    return DC;
  }

  Expected<std::pair<Insn, CodeOperand>> decodeInsn(uint32_t Offset,
                                                    FlowState &State) {
    ByteReader &Ops = S.in(StreamId::Opcodes);
    Insn I;
    CodeOperand Operand;
    uint8_t Code = Ops.readU1();
    if (Code == static_cast<uint8_t>(Op::Wide)) {
      I.IsWide = true;
      Code = Ops.readU1();
    }
    if (Ops.hasError())
      return makeError(ErrorCode::Truncated,
                       "unpack: truncated opcode stream");

    // Resolve pseudo-opcodes.
    bool LdcShort = false;
    switch (Code) {
    case PseudoLdcInt:
    case PseudoLdcWInt:
      Operand.Kind = ConstKind::Int;
      LdcShort = Code == PseudoLdcInt;
      I.Opcode = LdcShort ? Op::Ldc : Op::LdcW;
      break;
    case PseudoLdcFloat:
    case PseudoLdcWFloat:
      Operand.Kind = ConstKind::Float;
      LdcShort = Code == PseudoLdcFloat;
      I.Opcode = LdcShort ? Op::Ldc : Op::LdcW;
      break;
    case PseudoLdcString:
    case PseudoLdcWString:
      Operand.Kind = ConstKind::String;
      LdcShort = Code == PseudoLdcString;
      I.Opcode = LdcShort ? Op::Ldc : Op::LdcW;
      break;
    case PseudoLdc2Long:
      Operand.Kind = ConstKind::Long;
      I.Opcode = Op::Ldc2W;
      break;
    case PseudoLdc2Double:
      Operand.Kind = ConstKind::Double;
      I.Opcode = Op::Ldc2W;
      break;
    default:
      if (isFamilyPseudo(Code)) {
        OpFamily F = familyOfPseudo(Code);
        auto Variant = variantFor(F, State.top(familyKeyDepth(F)));
        if (!Variant)
          return makeError(ErrorCode::Corrupt,
                           "unpack: collapsed opcode with unknown stack "
                           "state");
        I.Opcode = *Variant;
      } else if (isValidOpcode(Code)) {
        I.Opcode = static_cast<Op>(Code);
      } else {
        return makeError(ErrorCode::Corrupt,
                         "unpack: undefined wire opcode " +
                             std::to_string(Code));
      }
      break;
    }

    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
    case OpFormat::S2:
    case OpFormat::NewArrayType:
      I.Const =
          static_cast<int32_t>(readVarInt(S.in(StreamId::IntConsts)));
      break;
    case OpFormat::LocalU1:
      I.LocalIndex =
          static_cast<uint32_t>(readVarUInt(S.in(StreamId::Registers)));
      break;
    case OpFormat::Iinc:
      I.LocalIndex =
          static_cast<uint32_t>(readVarUInt(S.in(StreamId::Registers)));
      I.Const =
          static_cast<int32_t>(readVarInt(S.in(StreamId::IntConsts)));
      break;
    case OpFormat::CpU1:
    case OpFormat::CpU2:
    case OpFormat::InvokeInterface:
      if (auto E = decodeCpOperand(I, Operand, State))
        return E;
      break;
    case OpFormat::Branch2:
    case OpFormat::Branch4: {
      // Compute in 64 bits and require the target to land in a legal
      // code array ([0, 65535]); a hostile offset would otherwise
      // overflow the 32-bit addition.
      int64_t T = static_cast<int64_t>(Offset) +
                  readVarInt(S.in(StreamId::BranchOffsets));
      if (T < 0 || T > 0xFFFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: branch target out of range");
      I.BranchTarget = static_cast<int32_t>(T);
      break;
    }
    case OpFormat::MultiANewArray:
      Operand.Kind = ConstKind::ClassTarget;
      Operand.Id = readClass();
      I.Const = static_cast<int32_t>(readVarUInt(S.in(StreamId::Counts)));
      break;
    case OpFormat::TableSwitch: {
      I.SwitchLow =
          static_cast<int32_t>(readVarInt(S.in(StreamId::IntConsts)));
      I.SwitchHigh =
          static_cast<int32_t>(readVarInt(S.in(StreamId::IntConsts)));
      if (I.SwitchHigh < I.SwitchLow ||
          static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow >= (1 << 24))
        return makeError(ErrorCode::Corrupt,
                         "unpack: malformed tableswitch bounds");
      ByteReader &B = S.in(StreamId::BranchOffsets);
      int64_t N = static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow + 1;
      // Every target costs at least one varint byte; a claimed count the
      // stream cannot hold is corrupt before the vector grows.
      if (N > static_cast<int64_t>(B.remaining()))
        return makeError(ErrorCode::Corrupt,
                         "unpack: tableswitch exceeds stream size");
      int64_t Def = static_cast<int64_t>(Offset) + readVarInt(B);
      if (Def < 0 || Def > 0xFFFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: switch default target out of range");
      I.SwitchDefault = static_cast<int32_t>(Def);
      I.SwitchTargets.reserve(static_cast<size_t>(N));
      for (int64_t K = 0; K < N; ++K) {
        int64_t T = static_cast<int64_t>(Offset) + readVarInt(B);
        if (!B.hasError() && (T < 0 || T > 0xFFFF))
          return makeError(ErrorCode::Corrupt,
                           "unpack: switch target out of range");
        I.SwitchTargets.push_back(static_cast<int32_t>(T));
      }
      break;
    }
    case OpFormat::LookupSwitch: {
      size_t N =
          static_cast<size_t>(readVarUInt(S.in(StreamId::Counts)));
      ByteReader &B = S.in(StreamId::BranchOffsets);
      if (N >= (1u << 24) || N > B.remaining())
        return makeError(ErrorCode::Corrupt,
                         "unpack: malformed lookupswitch count");
      int64_t Def = static_cast<int64_t>(Offset) + readVarInt(B);
      if (Def < 0 || Def > 0xFFFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: switch default target out of range");
      I.SwitchDefault = static_cast<int32_t>(Def);
      I.SwitchMatches.reserve(N);
      I.SwitchTargets.reserve(N);
      for (size_t K = 0; K < N; ++K) {
        I.SwitchMatches.push_back(
            static_cast<int32_t>(readVarInt(S.in(StreamId::IntConsts))));
        int64_t T = static_cast<int64_t>(Offset) + readVarInt(B);
        if (!B.hasError() && (T < 0 || T > 0xFFFF))
          return makeError(ErrorCode::Corrupt,
                           "unpack: switch target out of range");
        I.SwitchTargets.push_back(static_cast<int32_t>(T));
      }
      break;
    }
    case OpFormat::InvokeDynamic:
    case OpFormat::Wide:
      return makeError(ErrorCode::Corrupt,
                       "unpack: unexpected opcode format");
    }

    if (I.Opcode == Op::InvokeInterface)
      I.InvokeCount = static_cast<uint8_t>(
          invokeInterfaceCount(M, M.methodRef(Operand.Id).Sig));
    return std::make_pair(std::move(I), Operand);
  }

  Error decodeCpOperand(Insn &I, CodeOperand &Operand,
                        FlowState &State) {
    switch (cpRefKind(I.Opcode)) {
    case CpRefKind::LoadConst:
    case CpRefKind::LoadConst2:
      switch (Operand.Kind) {
      case ConstKind::Int:
        Operand.IntValue = readVarInt(S.in(StreamId::IntConsts));
        break;
      case ConstKind::Float:
        Operand.RawBits = S.in(StreamId::FloatConsts).readU4();
        break;
      case ConstKind::Long:
        Operand.RawBits = S.in(StreamId::LongConsts).readU8();
        break;
      case ConstKind::Double:
        Operand.RawBits = S.in(StreamId::DoubleConsts).readU8();
        break;
      case ConstKind::String:
        Operand.Id = readStringConst();
        break;
      default:
        return makeError(ErrorCode::Corrupt,
                         "unpack: ldc pseudo-op without constant kind");
      }
      return Error::success();
    case CpRefKind::ClassRef:
      Operand.Kind = ConstKind::ClassTarget;
      Operand.Id = readClass();
      return Error::success();
    case CpRefKind::FieldInstance:
    case CpRefKind::FieldStatic:
      Operand.Kind = ConstKind::Field;
      Operand.Id = readFieldRef(fieldPoolFor(I.Opcode));
      return Error::success();
    case CpRefKind::MethodVirtual:
    case CpRefKind::MethodSpecial:
    case CpRefKind::MethodStatic:
    case CpRefKind::MethodInterface:
      Operand.Kind = ConstKind::Method;
      Operand.Id = readMethodRef(methodPoolFor(I.Opcode),
                                 State.contextId());
      return Error::success();
    case CpRefKind::None:
      return makeError(ErrorCode::Corrupt,
                       "unpack: cp operand on non-cp opcode");
    }
    return Error::success();
  }

  Model &M;
  RefDecoder &Dec;
  StreamSet &S;
  RefScheme Scheme;
  DecodeLimits Limits;
  Error Latch;
};

//===----------------------------------------------------------------------===//
// Classfile materialization
//===----------------------------------------------------------------------===//

class Materializer {
public:
  explicit Materializer(const Model &M) : M(M) {}

  Expected<ClassFile> run(const DecodedClass &DC) {
    ClassFile CF;
    CF.MinorVersion = static_cast<uint16_t>(DC.MinorVersion);
    CF.MajorVersion = static_cast<uint16_t>(DC.MajorVersion);
    CF.AccessFlags = static_cast<uint16_t>(DC.Flags & 0xFFFF);

    // §9: materialize constants referenced by one-byte ldc first so
    // they land at the smallest constant-pool indices.
    for (const DecodedMethod &DM : DC.Methods) {
      if (!DM.Code)
        continue;
      for (size_t K = 0; K < DM.Code->Insns.size(); ++K)
        if (DM.Code->Insns[K].Opcode == Op::Ldc)
          addConst(CF, DM.Code->Operands[K]);
    }

    CF.ThisClass = CF.CP.addClass(M.classRefInternalName(DC.ThisId));
    CF.SuperClass =
        DC.HasSuper ? CF.CP.addClass(M.classRefInternalName(DC.SuperId))
                    : 0;
    for (uint32_t Iface : DC.Interfaces)
      CF.Interfaces.push_back(
          CF.CP.addClass(M.classRefInternalName(Iface)));
    if (DC.Flags & PackedFlagSynthetic)
      CF.Attributes.push_back({"Synthetic", {}});
    if (DC.Flags & PackedFlagDeprecated)
      CF.Attributes.push_back({"Deprecated", {}});

    for (const DecodedField &F : DC.Fields) {
      auto MI = materializeField(CF, F);
      if (!MI)
        return MI.takeError();
      CF.Fields.push_back(std::move(*MI));
    }
    for (const DecodedMethod &DM : DC.Methods) {
      auto MI = materializeMethod(CF, DM);
      if (!MI)
        return MI.takeError();
      CF.Methods.push_back(std::move(*MI));
    }

    if (auto E = canonicalizeConstantPool(CF))
      return E;
    return CF;
  }

private:
  uint16_t addConst(ClassFile &CF, const CodeOperand &C) {
    switch (C.Kind) {
    case ConstKind::Int:
      return CF.CP.addInteger(static_cast<int32_t>(C.IntValue));
    case ConstKind::Float:
      return CF.CP.addFloat(static_cast<uint32_t>(C.RawBits));
    case ConstKind::Long:
      return CF.CP.addLong(static_cast<int64_t>(C.RawBits));
    case ConstKind::Double:
      return CF.CP.addDouble(C.RawBits);
    case ConstKind::String:
      return CF.CP.addString(M.stringConst(C.Id));
    default:
      assert(false && "not a loadable constant");
      return 0;
    }
  }

  void addMemberMarkers(MemberInfo &MI, uint32_t Flags) {
    if (Flags & PackedFlagSynthetic)
      MI.Attributes.push_back({"Synthetic", {}});
    if (Flags & PackedFlagDeprecated)
      MI.Attributes.push_back({"Deprecated", {}});
  }

  Expected<MemberInfo> materializeField(ClassFile &CF,
                                        const DecodedField &F) {
    const MFieldRef &Ref = M.fieldRef(F.RefId);
    MemberInfo MI;
    MI.AccessFlags = static_cast<uint16_t>(F.Flags & 0xFFFF);
    MI.NameIndex = CF.CP.addUtf8(M.fieldName(Ref.Name));
    MI.DescriptorIndex =
        CF.CP.addUtf8(printTypeDesc(M.classRefTypeDesc(Ref.Type)));
    if (F.Flags & PackedFlagAux0) {
      uint16_t CpIdx = addConst(CF, {F.Const.Kind, F.Const.IntValue,
                                     F.Const.RawBits, F.Const.Id});
      ByteWriter W;
      W.writeU2(CpIdx);
      MI.Attributes.push_back({"ConstantValue", W.take()});
    }
    addMemberMarkers(MI, F.Flags);
    return MI;
  }

  Expected<MemberInfo> materializeMethod(ClassFile &CF,
                                         const DecodedMethod &DM) {
    const MMethodRef &Ref = M.methodRef(DM.RefId);
    MemberInfo MI;
    MI.AccessFlags = static_cast<uint16_t>(DM.Flags & 0xFFFF);
    MI.NameIndex = CF.CP.addUtf8(M.methodName(Ref.Name));
    MI.DescriptorIndex = CF.CP.addUtf8(M.signatureDescriptor(Ref.Sig));
    if (DM.Code) {
      auto Attr = materializeCode(CF, *DM.Code);
      if (!Attr)
        return Attr.takeError();
      MI.Attributes.push_back(std::move(*Attr));
    }
    if (DM.Flags & PackedFlagAux1) {
      ByteWriter W;
      W.writeU2(static_cast<uint16_t>(DM.Exceptions.size()));
      for (uint32_t C : DM.Exceptions)
        W.writeU2(CF.CP.addClass(M.classRefInternalName(C)));
      MI.Attributes.push_back({"Exceptions", W.take()});
    }
    addMemberMarkers(MI, DM.Flags);
    return MI;
  }

  Expected<AttributeInfo> materializeCode(ClassFile &CF,
                                          const DecodedCode &DC) {
    CodeAttribute Code;
    Code.MaxStack = static_cast<uint16_t>(DC.MaxStack);
    Code.MaxLocals = static_cast<uint16_t>(DC.MaxLocals);

    std::vector<Insn> Insns = DC.Insns;
    for (size_t K = 0; K < Insns.size(); ++K) {
      Insn &I = Insns[K];
      const CodeOperand &C = DC.Operands[K];
      switch (C.Kind) {
      case ConstKind::None:
        break;
      case ConstKind::Int:
      case ConstKind::Float:
      case ConstKind::Long:
      case ConstKind::Double:
      case ConstKind::String:
        I.CpIndex = addConst(CF, C);
        break;
      case ConstKind::ClassTarget:
        I.CpIndex = CF.CP.addClass(M.classRefInternalName(C.Id));
        break;
      case ConstKind::Field: {
        const MFieldRef &R = M.fieldRef(C.Id);
        I.CpIndex = CF.CP.addRef(
            CpTag::FieldRef, M.classRefInternalName(R.Owner),
            M.fieldName(R.Name),
            printTypeDesc(M.classRefTypeDesc(R.Type)));
        break;
      }
      case ConstKind::Method: {
        const MMethodRef &R = M.methodRef(C.Id);
        CpTag Tag = I.Opcode == Op::InvokeInterface
                        ? CpTag::InterfaceMethodRef
                        : CpTag::MethodRef;
        I.CpIndex = CF.CP.addRef(Tag, M.classRefInternalName(R.Owner),
                                 M.methodName(R.Name),
                                 M.signatureDescriptor(R.Sig));
        break;
      }
      }
      if (I.Opcode == Op::Ldc && I.CpIndex > 0xFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: ldc constant escaped the low "
                         "constant-pool indices");
    }
    Code.Code = encodeCode(Insns);

    for (const DecodedCode::Exc &E : DC.Table) {
      ExceptionTableEntry T;
      T.StartPc = static_cast<uint16_t>(E.StartPc);
      T.EndPc = static_cast<uint16_t>(E.EndPc);
      T.HandlerPc = static_cast<uint16_t>(E.HandlerPc);
      T.CatchType =
          E.HasCatch
              ? CF.CP.addClass(M.classRefInternalName(E.CatchClass))
              : 0;
      Code.ExceptionTable.push_back(T);
    }
    return encodeCodeAttribute(Code, CF.CP);
  }

  const Model &M;
};

/// Decodes one shard's streams (the whole body of a version-1 archive,
/// or one slice of a version-2 grouped container) into classfiles.
/// Each shard carries an independent model and reference state, so
/// shards decode with no shared mutable state; \p Dict (the version-2
/// shared dictionary, may be null) is replayed into each shard's model
/// before decoding, mirroring the encoder.
Expected<std::vector<ClassFile>>
decodeShardStreams(StreamSet &S, RefScheme Scheme, uint8_t Flags,
                   const SharedDictionary *Dict,
                   const DecodeLimits &Limits) {
  auto Dec = makeRefDecoder(Scheme);
  Model M;
  if (Flags & 4) {
    if (!preloadStandardRefs(M, *Dec, Scheme))
      return makeError(ErrorCode::Corrupt,
                       "unpack: archive needs preloaded references "
                       "the scheme cannot provide");
  }
  if (Dict && !preloadDictionary(M, *Dec, *Dict))
    return makeError(ErrorCode::Corrupt,
                     "unpack: archive dictionary needs a scheme "
                     "that supports preloaded references");
  ArchiveReader AR(M, *Dec, S, Scheme, Limits);
  auto Decoded = AR.decodeArchive();
  if (!Decoded)
    return Decoded.takeError();

  Materializer Mat(M);
  std::vector<ClassFile> Out;
  Out.reserve(Decoded->size());
  for (const DecodedClass &DC : *Decoded) {
    auto CF = Mat.run(DC);
    if (!CF)
      return CF.takeError();
    Out.push_back(std::move(*CF));
  }
  return Out;
}

} // namespace

Expected<std::vector<ClassFile>>
cjpack::unpackClasses(const std::vector<uint8_t> &Archive,
                      unsigned Threads) {
  UnpackOptions Options;
  Options.Threads = Threads;
  return unpackClasses(Archive, Options);
}

Expected<std::vector<ClassFile>>
cjpack::unpackClasses(const std::vector<uint8_t> &Archive,
                      const UnpackOptions &Options) {
  const DecodeLimits &Limits = Options.Limits;
  ByteReader R(Archive);
  if (R.readU4() != 0x434A504Bu)
    return makeError(R.hasError() ? ErrorCode::Truncated
                                  : ErrorCode::Corrupt,
                     "unpack: bad magic");
  uint8_t Version = R.readU1();
  if (Version != FormatVersionSerial && Version != FormatVersionSharded)
    return makeError(ErrorCode::Corrupt,
                     "unpack: unsupported format version");
  uint8_t Scheme = R.readU1();
  if (Scheme > static_cast<uint8_t>(RefScheme::MtfTransientsContext))
    return makeError(ErrorCode::Corrupt, "unpack: unknown reference scheme");
  uint8_t Flags = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "unpack: truncated archive header");

  if (Version == FormatVersionSerial) {
    ByteReader Body(Archive.data() + R.position(), R.remaining());
    StreamSet S;
    if (auto E = S.deserialize(Body, Limits))
      return E;
    return decodeShardStreams(S, static_cast<RefScheme>(Scheme), Flags,
                              /*Dict=*/nullptr, Limits);
  }

  auto Dict = SharedDictionary::deserialize(R, Limits);
  if (!Dict)
    return Dict.takeError();
  const SharedDictionary *DictPtr = Dict->empty() ? nullptr : &*Dict;

  auto Shards = deserializeShardedStreams(R, Limits);
  if (!Shards)
    return Shards.takeError();

  // Decode every shard concurrently; concatenation in shard order keeps
  // the result identical for any thread count.
  std::vector<std::future<Expected<std::vector<ClassFile>>>> Futures;
  Futures.reserve(Shards->size());
  {
    ThreadPool Pool(Options.Threads);
    for (StreamSet &S : *Shards) {
      StreamSet *Streams = &S;
      Futures.push_back(
          Pool.submit([Streams, Scheme, Flags, DictPtr, &Limits] {
            return decodeShardStreams(*Streams,
                                      static_cast<RefScheme>(Scheme), Flags,
                                      DictPtr, Limits);
          }));
    }
  }

  std::vector<ClassFile> Out;
  for (auto &F : Futures) {
    auto Shard = F.get();
    if (!Shard)
      return Shard.takeError();
    for (ClassFile &CF : *Shard)
      Out.push_back(std::move(CF));
  }
  return Out;
}

Expected<Manifest>
cjpack::manifestForPackedArchive(const std::vector<uint8_t> &Archive) {
  auto Classes = unpackArchive(Archive);
  if (!Classes)
    return Classes.takeError();
  return buildManifest(*Classes);
}

Expected<std::vector<NamedClass>>
cjpack::unpackArchive(const std::vector<uint8_t> &Archive,
                      unsigned Threads) {
  UnpackOptions Options;
  Options.Threads = Threads;
  return unpackArchive(Archive, Options);
}

Expected<std::vector<NamedClass>>
cjpack::unpackArchive(const std::vector<uint8_t> &Archive,
                      const UnpackOptions &Options) {
  auto Classes = unpackClasses(Archive, Options);
  if (!Classes)
    return Classes.takeError();
  std::vector<NamedClass> Out;
  Out.reserve(Classes->size());
  for (const ClassFile &CF : *Classes) {
    NamedClass C;
    C.Name = CF.thisClassName() + ".class";
    C.Data = writeClassFile(CF);
    Out.push_back(std::move(C));
  }
  return Out;
}
