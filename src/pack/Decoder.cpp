//===- Decoder.cpp - packed archive decoder -------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The decoder mirrors the encoder's preorder traversal exactly because
// both run the SAME traversal: the shared Transcriber (Transcode.h)
// instantiated for the decode direction. The same streams are read in
// the same order, the same approximate stack state machine resolves
// collapsed pseudo-opcodes, and the reference decoder's queues evolve in
// lock step with the encoder's. This file owns what is genuinely
// decode-only: archive-level orchestration (header, dictionary, shards)
// and classfile materialization — reconstruction assigns
// int/float/string constants the smallest constant-pool indices so every
// ldc operand fits in one byte (§9), then canonicalizes the pool, making
// decompression deterministic (§12).
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "pack/Dictionary.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include "pack/Transcode.h"
#include "support/ThreadPool.h"
#include "zip/Manifest.h"
#include <optional>

using namespace cjpack;

namespace {

//===----------------------------------------------------------------------===//
// Classfile materialization
//===----------------------------------------------------------------------===//

class Materializer {
public:
  explicit Materializer(const Model &M) : M(M) {}

  Expected<ClassFile> run(const ClassRec &DC) {
    ClassFile CF;
    CF.MinorVersion = static_cast<uint16_t>(DC.MinorVersion);
    CF.MajorVersion = static_cast<uint16_t>(DC.MajorVersion);
    CF.AccessFlags = static_cast<uint16_t>(DC.Flags & 0xFFFF);

    // §9: materialize constants referenced by one-byte ldc first so
    // they land at the smallest constant-pool indices.
    for (const MethodRec &DM : DC.Methods) {
      if (!DM.Code)
        continue;
      for (size_t K = 0; K < DM.Code->Insns.size(); ++K)
        if (DM.Code->Insns[K].Opcode == Op::Ldc)
          addConst(CF, DM.Code->Operands[K]);
    }

    CF.ThisClass = CF.CP.addClass(M.classRefInternalName(DC.ThisId));
    CF.SuperClass =
        DC.HasSuper ? CF.CP.addClass(M.classRefInternalName(DC.SuperId))
                    : 0;
    for (uint32_t Iface : DC.Interfaces)
      CF.Interfaces.push_back(
          CF.CP.addClass(M.classRefInternalName(Iface)));
    if (DC.Flags & PackedFlagSynthetic)
      CF.Attributes.push_back({"Synthetic", {}});
    if (DC.Flags & PackedFlagDeprecated)
      CF.Attributes.push_back({"Deprecated", {}});

    for (const FieldRec &F : DC.Fields) {
      auto MI = materializeField(CF, F);
      if (!MI)
        return MI.takeError();
      CF.Fields.push_back(std::move(*MI));
    }
    for (const MethodRec &DM : DC.Methods) {
      auto MI = materializeMethod(CF, DM);
      if (!MI)
        return MI.takeError();
      CF.Methods.push_back(std::move(*MI));
    }

    if (auto E = canonicalizeConstantPool(CF))
      return E;
    return CF;
  }

private:
  uint16_t addConst(ClassFile &CF, const CodeOperand &C) {
    switch (C.Kind) {
    case ConstKind::Int:
      return CF.CP.addInteger(static_cast<int32_t>(C.IntValue));
    case ConstKind::Float:
      return CF.CP.addFloat(static_cast<uint32_t>(C.RawBits));
    case ConstKind::Long:
      return CF.CP.addLong(static_cast<int64_t>(C.RawBits));
    case ConstKind::Double:
      return CF.CP.addDouble(C.RawBits);
    case ConstKind::String:
      return CF.CP.addString(M.stringConst(C.Id));
    default:
      assert(false && "not a loadable constant");
      return 0;
    }
  }

  void addMemberMarkers(MemberInfo &MI, uint32_t Flags) {
    if (Flags & PackedFlagSynthetic)
      MI.Attributes.push_back({"Synthetic", {}});
    if (Flags & PackedFlagDeprecated)
      MI.Attributes.push_back({"Deprecated", {}});
  }

  Expected<MemberInfo> materializeField(ClassFile &CF,
                                        const FieldRec &F) {
    const MFieldRef &Ref = M.fieldRef(F.RefId);
    MemberInfo MI;
    MI.AccessFlags = static_cast<uint16_t>(F.Flags & 0xFFFF);
    MI.NameIndex = CF.CP.addUtf8(M.fieldName(Ref.Name));
    MI.DescriptorIndex =
        CF.CP.addUtf8(printTypeDesc(M.classRefTypeDesc(Ref.Type)));
    if (F.Flags & PackedFlagAux0) {
      uint16_t CpIdx = addConst(CF, F.Const);
      ByteWriter W;
      W.writeU2(CpIdx);
      MI.Attributes.push_back({"ConstantValue", W.take()});
    }
    addMemberMarkers(MI, F.Flags);
    return MI;
  }

  Expected<MemberInfo> materializeMethod(ClassFile &CF,
                                         const MethodRec &DM) {
    const MMethodRef &Ref = M.methodRef(DM.RefId);
    MemberInfo MI;
    MI.AccessFlags = static_cast<uint16_t>(DM.Flags & 0xFFFF);
    MI.NameIndex = CF.CP.addUtf8(M.methodName(Ref.Name));
    MI.DescriptorIndex = CF.CP.addUtf8(M.signatureDescriptor(Ref.Sig));
    if (DM.Code) {
      auto Attr = materializeCode(CF, *DM.Code);
      if (!Attr)
        return Attr.takeError();
      MI.Attributes.push_back(std::move(*Attr));
    }
    if (DM.Flags & PackedFlagAux1) {
      ByteWriter W;
      W.writeU2(static_cast<uint16_t>(DM.Exceptions.size()));
      for (uint32_t C : DM.Exceptions)
        W.writeU2(CF.CP.addClass(M.classRefInternalName(C)));
      MI.Attributes.push_back({"Exceptions", W.take()});
    }
    addMemberMarkers(MI, DM.Flags);
    return MI;
  }

  Expected<AttributeInfo> materializeCode(ClassFile &CF,
                                          const CodeRec &DC) {
    CodeAttribute Code;
    Code.MaxStack = static_cast<uint16_t>(DC.MaxStack);
    Code.MaxLocals = static_cast<uint16_t>(DC.MaxLocals);

    std::vector<Insn> Insns = DC.Insns;
    for (size_t K = 0; K < Insns.size(); ++K) {
      Insn &I = Insns[K];
      const CodeOperand &C = DC.Operands[K];
      switch (C.Kind) {
      case ConstKind::None:
        break;
      case ConstKind::Int:
      case ConstKind::Float:
      case ConstKind::Long:
      case ConstKind::Double:
      case ConstKind::String:
        I.CpIndex = addConst(CF, C);
        break;
      case ConstKind::ClassTarget:
        I.CpIndex = CF.CP.addClass(M.classRefInternalName(C.Id));
        break;
      case ConstKind::Field: {
        const MFieldRef &R = M.fieldRef(C.Id);
        I.CpIndex = CF.CP.addRef(
            CpTag::FieldRef, M.classRefInternalName(R.Owner),
            M.fieldName(R.Name),
            printTypeDesc(M.classRefTypeDesc(R.Type)));
        break;
      }
      case ConstKind::Method: {
        const MMethodRef &R = M.methodRef(C.Id);
        CpTag Tag = I.Opcode == Op::InvokeInterface
                        ? CpTag::InterfaceMethodRef
                        : CpTag::MethodRef;
        I.CpIndex = CF.CP.addRef(Tag, M.classRefInternalName(R.Owner),
                                 M.methodName(R.Name),
                                 M.signatureDescriptor(R.Sig));
        break;
      }
      }
      if (I.Opcode == Op::Ldc && I.CpIndex > 0xFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: ldc constant escaped the low "
                         "constant-pool indices");
    }
    Code.Code = encodeCode(Insns);

    for (const CodeRec::Handler &E : DC.Table) {
      ExceptionTableEntry T;
      T.StartPc = static_cast<uint16_t>(E.StartPc);
      T.EndPc = static_cast<uint16_t>(E.EndPc);
      T.HandlerPc = static_cast<uint16_t>(E.HandlerPc);
      T.CatchType =
          E.HasCatch
              ? CF.CP.addClass(M.classRefInternalName(E.CatchClass))
              : 0;
      Code.ExceptionTable.push_back(T);
    }
    return encodeCodeAttribute(Code, CF.CP);
  }

  const Model &M;
};

/// Decodes one shard's streams (the whole body of a version-1 archive,
/// or one slice of a version-2 grouped container) into classfiles.
/// Each shard carries an independent model and reference state, so
/// shards decode with no shared mutable state; \p Dict (the version-2
/// shared dictionary, may be null) is replayed into each shard's model
/// before decoding, mirroring the encoder.
Expected<std::vector<ClassFile>>
decodeShardStreams(StreamSet &S, RefScheme Scheme, uint8_t Flags,
                   const SharedDictionary *Dict,
                   const DecodeLimits &Limits) {
  auto Dec = makeRefDecoder(Scheme);
  Model M;
  if (Flags & 4) {
    if (!preloadStandardRefs(M, *Dec, Scheme))
      return makeError(ErrorCode::Corrupt,
                       "unpack: archive needs preloaded references "
                       "the scheme cannot provide");
  }
  if (Dict && !preloadDictionary(M, *Dec, *Dict))
    return makeError(ErrorCode::Corrupt,
                     "unpack: archive dictionary needs a scheme "
                     "that supports preloaded references");

  DecodeContext C{M, *Dec, S, Scheme, Limits};
  Transcriber<DecodeContext> Reader(C);
  std::vector<ClassRec> Decoded;
  if (auto E = Reader.transcodeArchive(Decoded))
    return E;

  Materializer Mat(M);
  std::vector<ClassFile> Out;
  Out.reserve(Decoded.size());
  for (const ClassRec &DC : Decoded) {
    auto CF = Mat.run(DC);
    if (!CF)
      return CF.takeError();
    Out.push_back(std::move(*CF));
  }
  return Out;
}

} // namespace

Expected<std::vector<ClassFile>>
cjpack::unpackClasses(const std::vector<uint8_t> &Archive,
                      unsigned Threads) {
  UnpackOptions Options;
  Options.Threads = Threads;
  return unpackClasses(Archive, Options);
}

Expected<std::vector<ClassFile>>
cjpack::unpackClasses(const std::vector<uint8_t> &Archive,
                      const UnpackOptions &Options) {
  const DecodeLimits &Limits = Options.Limits;
  ByteReader R(Archive);
  if (R.readU4() != 0x434A504Bu)
    return makeError(R.hasError() ? ErrorCode::Truncated
                                  : ErrorCode::Corrupt,
                     "unpack: bad magic");
  uint8_t Version = R.readU1();
  if (Version != FormatVersionSerial && Version != FormatVersionSharded)
    return makeError(ErrorCode::Corrupt,
                     "unpack: unsupported format version");
  uint8_t Scheme = R.readU1();
  if (Scheme > static_cast<uint8_t>(RefScheme::MtfTransientsContext))
    return makeError(ErrorCode::Corrupt, "unpack: unknown reference scheme");
  uint8_t Flags = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "unpack: truncated archive header");

  if (Version == FormatVersionSerial) {
    ByteReader Body(Archive.data() + R.position(), R.remaining());
    StreamSet S;
    if (auto E = S.deserialize(Body, Limits))
      return E;
    return decodeShardStreams(S, static_cast<RefScheme>(Scheme), Flags,
                              /*Dict=*/nullptr, Limits);
  }

  auto Dict = SharedDictionary::deserialize(R, Limits);
  if (!Dict)
    return Dict.takeError();
  const SharedDictionary *DictPtr = Dict->empty() ? nullptr : &*Dict;

  auto Shards = deserializeShardedStreams(R, Limits);
  if (!Shards)
    return Shards.takeError();

  // Decode every shard concurrently; concatenation in shard order keeps
  // the result identical for any thread count.
  std::vector<std::future<Expected<std::vector<ClassFile>>>> Futures;
  Futures.reserve(Shards->size());
  {
    ThreadPool Pool(Options.Threads);
    for (StreamSet &S : *Shards) {
      StreamSet *Streams = &S;
      Futures.push_back(
          Pool.submit([Streams, Scheme, Flags, DictPtr, &Limits] {
            return decodeShardStreams(*Streams,
                                      static_cast<RefScheme>(Scheme), Flags,
                                      DictPtr, Limits);
          }));
    }
  }

  std::vector<ClassFile> Out;
  for (auto &F : Futures) {
    auto Shard = F.get();
    if (!Shard)
      return Shard.takeError();
    for (ClassFile &CF : *Shard)
      Out.push_back(std::move(CF));
  }
  return Out;
}

Expected<Manifest>
cjpack::manifestForPackedArchive(const std::vector<uint8_t> &Archive) {
  auto Classes = unpackArchive(Archive);
  if (!Classes)
    return Classes.takeError();
  return buildManifest(*Classes);
}

Expected<std::vector<NamedClass>>
cjpack::unpackArchive(const std::vector<uint8_t> &Archive,
                      unsigned Threads) {
  UnpackOptions Options;
  Options.Threads = Threads;
  return unpackArchive(Archive, Options);
}

Expected<std::vector<NamedClass>>
cjpack::unpackArchive(const std::vector<uint8_t> &Archive,
                      const UnpackOptions &Options) {
  auto Classes = unpackClasses(Archive, Options);
  if (!Classes)
    return Classes.takeError();
  std::vector<NamedClass> Out;
  Out.reserve(Classes->size());
  for (const ClassFile &CF : *Classes) {
    NamedClass C;
    C.Name = CF.thisClassName() + ".class";
    C.Data = writeClassFile(CF);
    Out.push_back(std::move(C));
  }
  return Out;
}
