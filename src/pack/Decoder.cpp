//===- Decoder.cpp - packed archive decoder -------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The decoder mirrors the encoder's preorder traversal exactly because
// both run the SAME traversal: the shared Transcriber (Transcode.h)
// instantiated for the decode direction. The same streams are read in
// the same order, the same approximate stack state machine resolves
// collapsed pseudo-opcodes, and the reference decoder's queues evolve in
// lock step with the encoder's. This file owns what is genuinely
// decode-only: archive-level orchestration (header, dictionary, shards).
// Classfile materialization — §9 ldc-first constant placement and the
// §12 canonical pool — lives in Materialize.cpp, shared with the lazy
// PackedArchiveReader.
//
//===----------------------------------------------------------------------===//

#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "pack/ArchiveReader.h"
#include "pack/Dictionary.h"
#include "pack/Materialize.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include "pack/Transcode.h"
#include "support/ThreadPool.h"
#include "zip/Manifest.h"
#include <optional>

using namespace cjpack;

namespace {

/// Decodes one shard's streams (the whole body of a version-1 archive,
/// or one slice of a version-2 grouped container) into classfiles.
/// Each shard carries an independent model and reference state, so
/// shards decode with no shared mutable state; \p Dict (the version-2
/// shared dictionary, may be null) is replayed into each shard's model
/// before decoding, mirroring the encoder.
Expected<std::vector<ClassFile>>
decodeShardStreams(StreamSet &S, RefScheme Scheme, uint8_t Flags,
                   const SharedDictionary *Dict,
                   const DecodeLimits &Limits) {
  auto Dec = makeRefDecoder(Scheme);
  Model M;
  if (Flags & 4) {
    if (!preloadStandardRefs(M, *Dec, Scheme))
      return makeError(ErrorCode::Corrupt,
                       "unpack: archive needs preloaded references "
                       "the scheme cannot provide");
  }
  if (Dict && !preloadDictionary(M, *Dec, *Dict))
    return makeError(ErrorCode::Corrupt,
                     "unpack: archive dictionary needs a scheme "
                     "that supports preloaded references");

  DecodeContext C{M, *Dec, S, Scheme, Limits};
  Transcriber<DecodeContext> Reader(C);
  std::vector<ClassRec> Decoded;
  if (auto E = Reader.transcodeArchive(Decoded))
    return E;

  std::vector<ClassFile> Out;
  Out.reserve(Decoded.size());
  for (const ClassRec &DC : Decoded) {
    auto CF = materializeClass(M, DC);
    if (!CF)
      return CF.takeError();
    Out.push_back(std::move(*CF));
  }
  return Out;
}

} // namespace

Expected<std::vector<ClassFile>>
cjpack::unpackClasses(std::span<const uint8_t> Archive,
                      unsigned Threads) {
  UnpackOptions Options;
  Options.Threads = Threads;
  return unpackClasses(Archive, Options);
}

Expected<std::vector<ClassFile>>
cjpack::unpackClasses(std::span<const uint8_t> Archive,
                      const UnpackOptions &Options) {
  const DecodeLimits &Limits = Options.Limits;
  ByteReader R(Archive);
  if (R.readU4() != 0x434A504Bu)
    return makeError(R.hasError() ? ErrorCode::Truncated
                                  : ErrorCode::Corrupt,
                     "unpack: bad magic");
  uint8_t Version = R.readU1();
  if (Version == FormatVersionIndexed)
    return makeError(ErrorCode::VersionMismatch,
                     "unpack: version-3 indexed archive; open it with "
                     "PackedArchiveReader");
  if (Version != FormatVersionSerial && Version != FormatVersionSharded)
    return makeError(ErrorCode::VersionMismatch,
                     "unpack: unsupported format version " +
                         std::to_string(Version));
  uint8_t Scheme = R.readU1();
  if (Scheme > static_cast<uint8_t>(RefScheme::MtfTransientsContext))
    return makeError(ErrorCode::Corrupt, "unpack: unknown reference scheme");
  uint8_t Flags = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "unpack: truncated archive header");
  if (((Flags >> BackendFlagShift) & BackendFlagMask) > ArchiveBackendMixed)
    return makeError(ErrorCode::Corrupt,
                     "unpack: unknown archive backend code");

  if (Version == FormatVersionSerial) {
    ByteReader Body(Archive.data() + R.position(), R.remaining());
    StreamSet S;
    if (auto E = S.deserialize(Body, Limits))
      return E;
    return decodeShardStreams(S, static_cast<RefScheme>(Scheme), Flags,
                              /*Dict=*/nullptr, Limits);
  }

  auto Dict = SharedDictionary::deserialize(R, Limits);
  if (!Dict)
    return Dict.takeError();
  const SharedDictionary *DictPtr = Dict->empty() ? nullptr : &*Dict;

  auto Shards = deserializeShardedStreams(R, Limits);
  if (!Shards)
    return Shards.takeError();

  // Decode every shard concurrently; concatenation in shard order keeps
  // the result identical for any thread count.
  std::vector<std::future<Expected<std::vector<ClassFile>>>> Futures;
  Futures.reserve(Shards->size());
  {
    ThreadPool Pool(Options.Threads);
    for (StreamSet &S : *Shards) {
      StreamSet *Streams = &S;
      Futures.push_back(
          Pool.submit([Streams, Scheme, Flags, DictPtr, &Limits] {
            return decodeShardStreams(*Streams,
                                      static_cast<RefScheme>(Scheme), Flags,
                                      DictPtr, Limits);
          }));
    }
  }

  std::vector<ClassFile> Out;
  for (auto &F : Futures) {
    auto Shard = F.get();
    if (!Shard)
      return Shard.takeError();
    for (ClassFile &CF : *Shard)
      Out.push_back(std::move(CF));
  }
  return Out;
}

Expected<Manifest>
cjpack::manifestForPackedArchive(std::span<const uint8_t> Archive) {
  auto Classes = unpackArchive(Archive);
  if (!Classes)
    return Classes.takeError();
  return buildManifest(*Classes);
}

Expected<std::vector<NamedClass>>
cjpack::unpackArchive(std::span<const uint8_t> Archive,
                      unsigned Threads) {
  UnpackOptions Options;
  Options.Threads = Threads;
  return unpackArchive(Archive, Options);
}

Expected<std::vector<NamedClass>>
cjpack::unpackArchive(std::span<const uint8_t> Archive,
                      const UnpackOptions &Options) {
  auto Classes = unpackClasses(Archive, Options);
  if (!Classes)
    return Classes.takeError();
  std::vector<NamedClass> Out;
  Out.reserve(Classes->size());
  for (const ClassFile &CF : *Classes) {
    NamedClass C;
    C.Name = std::string(CF.thisClassName()) + ".class";
    C.Data = writeClassFile(CF);
    Out.push_back(std::move(C));
  }
  return Out;
}

Expected<std::vector<NamedClass>>
cjpack::unpackAnyArchive(std::span<const uint8_t> Archive,
                         const UnpackOptions &Options) {
  if (Archive.size() > 4 && Archive[4] == FormatVersionIndexed) {
    auto Reader = PackedArchiveReader::open(Archive.data(), Archive.size(),
                                            Options.Limits);
    if (!Reader)
      return Reader.takeError();
    auto Classes = Reader->unpackAll();
    if (!Classes)
      return Classes.takeError();
    std::vector<NamedClass> Out;
    Out.reserve(Classes->size());
    for (const ClassFile &CF : *Classes) {
      NamedClass C;
      C.Name = std::string(CF.thisClassName()) + ".class";
      C.Data = writeClassFile(CF);
      Out.push_back(std::move(C));
    }
    return Out;
  }
  return unpackArchive(Archive, Options);
}
