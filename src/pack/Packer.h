//===- Packer.h - the packed archive public API ----------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Public API of the paper's contribution: packing a collection of Java
/// classfiles into the compressed wire format, and unpacking it back
/// into standard classfiles.
///
/// Typical use:
/// \code
///   std::vector<NamedClass> Classes = ...;           // name + bytes
///   auto Packed = packClassBytes(Classes, PackOptions());
///   auto Restored = unpackArchive(Packed->Archive);  // NamedClass list
/// \endcode
///
/// Unpacking is deterministic: the same archive always reproduces the
/// identical classfiles (§12), which are the prepareForPacking-canonical
/// form of the inputs.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_PACKER_H
#define CJPACK_PACK_PACKER_H

#include "classfile/ClassFile.h"
#include "coder/RefCoder.h"
#include "pack/Streams.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include "support/PackTrace.h"
#include "zip/Jar.h"
#include "zip/Manifest.h"
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cjpack {

/// Knobs for the packed format; defaults are the paper's shipping
/// configuration (move-to-front with transients and context, stack-state
/// opcode collapsing, per-stream zlib).
struct PackOptions {
  /// Reference-encoding scheme (§5.1). Every scheme both packs and
  /// unpacks; non-default schemes exist for the Table 3 experiment.
  RefScheme Scheme = RefScheme::MtfTransientsContext;
  /// Collapse typed opcode families under the approximate stack state
  /// (§7.1).
  bool CollapseOpcodes = true;
  /// zlib-compress the output streams; off reproduces the "not gzip'd"
  /// rows of Table 5.
  bool CompressStreams = true;
  /// Reorder classes so superclasses/interfaces precede their
  /// subclasses, enabling eager class loading (§11).
  bool OrderForEagerLoading = true;
  /// Seed both sides with the §14 standard reference table (package
  /// names, java/lang classes, common method refs) so small archives
  /// never pay to define them. Unsupported with the Freq/Cache schemes.
  bool PreloadStandardRefs = false;
  /// Split the archive into this many independently-encoded shards
  /// (each with its own model, MTF queues, and streams) so shards can
  /// be packed and unpacked concurrently. Shard assignment is by
  /// stable class order, never by scheduling, so output is a pure
  /// function of (input, options, shard count). 1 writes the original
  /// single-shard wire format; >1 writes the versioned sharded format:
  /// definitions shared across shards are factored into a dictionary
  /// and each stream's shard slices are compressed jointly, so
  /// sharding costs little compression. Clamped to the class count.
  ///
  /// 0 selects autotuning (autoShardCount): the count is derived from
  /// the class count and hardware concurrency, with a serial floor so
  /// tiny corpora keep the single-shard format. Autotuned output is
  /// still deterministic for a fixed machine, but depends on
  /// hardware_concurrency — use an explicit count when archives must
  /// reproduce across machines.
  unsigned Shards = 1;
  /// Worker threads used to encode shards (0 = one per hardware
  /// thread). Has no effect on the output bytes.
  unsigned Threads = 0;
  /// Drop private members (and, via re-canonicalization, their
  /// constant-pool entries) that no reference anywhere in the archive
  /// resolves to, before encoding (analysis/ArchiveAnalysis.h). The
  /// output is gated: the packed archive is unpacked again and every
  /// restored class must be byte-identical to its stripped input and
  /// introduce no new verifier diagnostics, or packing fails with a
  /// typed error. Off by default — stripped archives are smaller but no
  /// longer restore the dead members.
  bool StripUnreferenced = false;
  /// Write the version-3 random-access layout: a per-class index after
  /// the header, and each shard's streams serialized as an independent
  /// blob so PackedArchiveReader can locate, inflate, and decode a
  /// single shard on demand. Costs a little size (the index, plus
  /// per-shard instead of joint compression) in exchange for lazy
  /// single-class extraction. Off (the default) writes version 1/2
  /// exactly as before. Requires unique class names.
  bool RandomAccessIndex = false;
  /// Final-stage compression backend applied uniformly to every stream
  /// (pack/Backend.h). Zlib is the historical default; archives packed
  /// with it are byte-identical to pre-registry cjpack.
  BackendId Backend = BackendId::Zlib;
  /// Per-stream backend overrides (the `packtool tune` tournament
  /// output). When set, takes precedence over Backend and the archive
  /// header advertises the mixed code.
  std::optional<std::array<BackendId, NumStreams>> StreamBackends;

  /// The effective per-stream plan these options describe.
  BackendPlan backendPlan() const {
    if (!CompressStreams)
      return BackendPlan::uniform(BackendId::Store);
    if (StreamBackends) {
      BackendPlan P;
      P.Stream = *StreamBackends;
      return P;
    }
    return BackendPlan::uniform(Backend);
  }
};

/// Result of packing: the archive plus per-stream accounting.
struct PackResult {
  std::vector<uint8_t> Archive;
  StreamSizes Sizes;
  size_t ClassCount = 0;
  /// Sharded archives only: entries in the shared dictionary (string
  /// and class-ref definitions factored out of the shards) and the
  /// serialized dictionary's size in the archive.
  size_t DictionaryEntries = 0;
  size_t DictionaryBytes = 0;
  /// Version-3 archives only: bytes of the per-class index frame
  /// (including its length prefix), the random-access overhead.
  size_t IndexBytes = 0;
  /// StripUnreferenced only: dead private members dropped pre-encode.
  size_t StrippedFields = 0;
  size_t StrippedMethods = 0;
  /// Telemetry from this run: per-phase wall times, per-shard timings,
  /// and per-pool coder tallies. Observational only — the archive bytes
  /// are independent of anything recorded here.
  PackTrace Trace;
};

/// The shard count PackOptions::Shards = 0 resolves to: roughly one
/// shard per AutoShardClassesPerShard classes, clamped to the hardware
/// thread count and MaxShards, with a serial floor — corpora under two
/// shards' worth of classes stay single-shard, since dictionary/joint
/// compression overheads only pay for themselves at scale. Pure
/// function of (ClassCount, hardware_concurrency).
size_t autoShardCount(size_t ClassCount);

/// Target classes per shard for autoShardCount.
inline constexpr size_t AutoShardClassesPerShard = 256;

/// Packs already-parsed classfiles. Inputs must have been run through
/// prepareForPacking (unrecognized attributes are a hard error).
Expected<PackResult> packClasses(const std::vector<ClassFile> &Classes,
                                 const PackOptions &Options);

/// Parses, prepares (strip + canonicalize), and packs raw classfiles.
Expected<PackResult> packClassBytes(const std::vector<NamedClass> &Classes,
                                    const PackOptions &Options);

/// Knobs for unpacking. The limits bound what a hostile archive can
/// make the decoder allocate or compute; the defaults accommodate any
/// real archive, and every violation is a typed LimitExceeded error.
struct UnpackOptions {
  /// Worker threads used to decode shards (0 = one per hardware
  /// thread). Has no effect on the result.
  unsigned Threads = 0;
  /// Resource caps enforced against every wire-declared length/count.
  DecodeLimits Limits;
};

/// Unpacks an archive into classfile models, in archive order. Sharded
/// archives decode their shards on \p Threads workers (0 = one per
/// hardware thread); the result is identical for any thread count.
///
/// Hostile-input contract: every count, length, and reference id read
/// from the wire is validated before use, so a corrupt or truncated
/// archive yields a typed Error (Truncated / Corrupt / LimitExceeded),
/// never undefined behavior or an unbounded allocation.
///
/// \p Archive is borrowed for the duration of the call only (stream
/// payloads are decoded from slices of it without a staging copy), so
/// a memory-mapped file can be unpacked without ever materializing the
/// archive in a vector.
Expected<std::vector<ClassFile>>
unpackClasses(std::span<const uint8_t> Archive, unsigned Threads = 0);
Expected<std::vector<ClassFile>>
unpackClasses(std::span<const uint8_t> Archive,
              const UnpackOptions &Options);

/// Unpacks an archive into named classfile bytes ("pkg/Name.class").
Expected<std::vector<NamedClass>>
unpackArchive(std::span<const uint8_t> Archive, unsigned Threads = 0);
Expected<std::vector<NamedClass>>
unpackArchive(std::span<const uint8_t> Archive,
              const UnpackOptions &Options);

/// Unpacks an archive of any format version into named classfile
/// bytes: version-3 archives route through PackedArchiveReader (so the
/// indexed layout decodes without the whole-archive path rejecting it),
/// versions 1/2 through unpackArchive. The version dispatch shared by
/// packtool and the cjpackd request handlers; \p Options.Limits bound
/// both paths.
Expected<std::vector<NamedClass>>
unpackAnyArchive(std::span<const uint8_t> Archive,
                 const UnpackOptions &Options = {});

/// The §12 signing workflow: decompresses \p Archive and digests the
/// resulting classfiles into a manifest. The sender runs this right
/// after packing and signs/ships the manifest; the receiver runs the
/// same function and compares — deterministic decompression makes the
/// digests reproducible even though packing renumbered constant pools.
Expected<Manifest>
manifestForPackedArchive(std::span<const uint8_t> Archive);

} // namespace cjpack

#endif // CJPACK_PACK_PACKER_H
