//===- Backend.cpp - pluggable compression backends -----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Backend.h"
#include "coder/Arithmetic.h"
#include "coder/Huffman.h"
#include "zip/Zlib.h"

using namespace cjpack;

namespace {

std::vector<uint8_t> storeCompress(std::span<const uint8_t> Raw) {
  return {Raw.begin(), Raw.end()};
}

Expected<std::vector<uint8_t>>
storeDecompress(std::span<const uint8_t> Stored, size_t DeclaredRaw) {
  if (Stored.size() > (DeclaredRaw != 0 ? DeclaredRaw : 1))
    return makeError(ErrorCode::LimitExceeded,
                     "store: stored bytes exceed the container's raw "
                     "length");
  return std::vector<uint8_t>(Stored.begin(), Stored.end());
}

std::vector<uint8_t> zlibCompress(std::span<const uint8_t> Raw) {
  return deflateBytes(Raw);
}

Expected<std::vector<uint8_t>>
zlibDecompress(std::span<const uint8_t> Stored, size_t DeclaredRaw) {
  return inflateBytes(Stored, DeclaredRaw, DeclaredRaw != 0 ? DeclaredRaw : 1);
}

const std::array<CompressionBackend, NumBackends> Registry = {{
    {BackendId::Store, "store", storeCompress, storeDecompress},
    {BackendId::Zlib, "zlib", zlibCompress, zlibDecompress},
    {BackendId::Huffman, "huffman", huffmanCompress, huffmanDecompress},
    {BackendId::Arith, "arith", arithCompressBytes, arithDecompressBytes},
}};

} // namespace

const std::array<CompressionBackend, NumBackends> &cjpack::allBackends() {
  return Registry;
}

const CompressionBackend *cjpack::findBackend(uint8_t WireId) {
  if (WireId >= NumBackends)
    return nullptr;
  return &Registry[WireId];
}

const CompressionBackend *cjpack::findBackendByName(std::string_view Name) {
  for (const CompressionBackend &B : Registry)
    if (Name == B.Name)
      return &B;
  return nullptr;
}
