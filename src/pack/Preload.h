//===- Preload.h - preloaded standard references (§14) ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §14 extension: "assume a standard set of preloaded
/// references to frequently used package names, classes, method
/// references and so on". Both the compressor and the decompressor seed
/// their object pools and MTF queues with the same built-in table
/// before any class is encoded, so references to java/lang/Object,
/// <init>()V, StringBuffer.append and friends never pay for a
/// definition on the wire. The paper predicts this helps small archives
/// most; bench_ablation_preload measures exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_PRELOAD_H
#define CJPACK_PACK_PRELOAD_H

#include "coder/RefCoder.h"
#include "pack/Model.h"

namespace cjpack {

/// Seeds \p M and \p Enc with the standard reference table, in a fixed
/// order. \p Scheme selects the pool layout (the Simple baseline merges
/// method/field pools). Returns false if the scheme cannot preload
/// (Freq/Cache).
bool preloadStandardRefs(Model &M, RefEncoder &Enc, RefScheme Scheme);

/// Decoder-side mirror; must be called before decoding any class.
bool preloadStandardRefs(Model &M, RefDecoder &Dec, RefScheme Scheme);

} // namespace cjpack

#endif // CJPACK_PACK_PRELOAD_H
