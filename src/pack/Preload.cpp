//===- Preload.cpp - preloaded standard references (§14) ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Preload.h"
#include "pack/CodeCommon.h"

using namespace cjpack;

namespace {

/// Well-known classes every 1999-era Java program touches.
const char *const StandardClasses[] = {
    "java/lang/Object",       "java/lang/String",
    "java/lang/StringBuffer", "java/lang/System",
    "java/lang/Exception",    "java/lang/RuntimeException",
    "java/lang/Throwable",    "java/lang/Math",
    "java/lang/Thread",       "java/lang/Class",
    "java/lang/Integer",      "java/lang/Boolean",
    "java/io/PrintStream",    "java/io/IOException",
    "java/io/InputStream",    "java/io/OutputStream",
    "java/util/Vector",       "java/util/Hashtable",
    "java/util/Enumeration",
};

const char *const StandardMethodNames[] = {
    "<init>", "<clinit>", "toString", "equals",  "hashCode",
    "length", "append",   "println",  "valueOf", "get",
    "put",    "size",     "run",      "main",    "close",
};

const char *const StandardFieldNames[] = {"out", "err", "in"};

/// Standard virtual-method references: owner, name, descriptor.
struct StdMethod {
  const char *Owner, *Name, *Desc;
  PoolKind Pool;
};
const StdMethod StandardMethods[] = {
    {"java/lang/Object", "<init>", "()V", PoolKind::MethodSpecial},
    {"java/lang/Object", "toString", "()Ljava/lang/String;",
     PoolKind::MethodVirtual},
    {"java/lang/Object", "equals", "(Ljava/lang/Object;)Z",
     PoolKind::MethodVirtual},
    {"java/lang/Object", "hashCode", "()I", PoolKind::MethodVirtual},
    {"java/lang/StringBuffer", "<init>", "()V", PoolKind::MethodSpecial},
    {"java/lang/StringBuffer", "append",
     "(Ljava/lang/String;)Ljava/lang/StringBuffer;",
     PoolKind::MethodVirtual},
    {"java/lang/StringBuffer", "append", "(I)Ljava/lang/StringBuffer;",
     PoolKind::MethodVirtual},
    {"java/lang/StringBuffer", "toString", "()Ljava/lang/String;",
     PoolKind::MethodVirtual},
    {"java/io/PrintStream", "println", "(Ljava/lang/String;)V",
     PoolKind::MethodVirtual},
    {"java/lang/String", "length", "()I", PoolKind::MethodVirtual},
    {"java/lang/String", "equals", "(Ljava/lang/Object;)Z",
     PoolKind::MethodVirtual},
};

/// Seeds model + coder through the common subset of the two coder
/// interfaces. \p Preload forwards to RefEncoder/RefDecoder::preload.
template <typename PreloadFn>
bool preloadInto(Model &M, RefScheme Scheme, PreloadFn &&Preload) {
  // Probe scheme support with the first entry.
  auto Cls = M.internClassByInternalName(StandardClasses[0]);
  if (!Cls)
    return false;
  const MClassRef &First = M.classRef(*Cls);
  if (!Preload(poolId(PoolKind::Package), First.Package))
    return false;

  auto SeedClass = [&](const std::string &Name) -> uint32_t {
    auto Id = M.internClassByInternalName(Name);
    assert(Id && "standard class name must parse");
    const MClassRef &R = M.classRef(*Id);
    if (R.Base == 'L') {
      Preload(poolId(PoolKind::Package), R.Package);
      Preload(poolId(PoolKind::SimpleName), R.Simple);
    }
    Preload(poolId(PoolKind::ClassRefPool), *Id);
    return *Id;
  };

  for (const char *Name : StandardClasses)
    SeedClass(Name);
  // Primitive class refs appear in every factored signature.
  for (char Prim : {'V', 'I', 'J', 'F', 'D', 'Z', 'B', 'C', 'S'}) {
    TypeDesc T;
    T.Base = Prim;
    Preload(poolId(PoolKind::ClassRefPool), M.internTypeDesc(T));
  }
  for (const char *Name : StandardMethodNames)
    Preload(poolId(PoolKind::MethodName), M.internMethodName(Name));
  for (const char *Name : StandardFieldNames)
    Preload(poolId(PoolKind::FieldName), M.internFieldName(Name));

  for (const StdMethod &SM : StandardMethods) {
    MMethodRef Ref;
    Ref.Owner = SeedClass(SM.Owner);
    Ref.Name = M.internMethodName(SM.Name);
    auto Sig = M.internSignature(SM.Desc);
    assert(Sig && "standard descriptor must parse");
    for (uint32_t C : *Sig)
      Preload(poolId(PoolKind::ClassRefPool), C);
    Ref.Sig = std::move(*Sig);
    Preload(poolId(effectivePool(SM.Pool, Scheme)),
            M.internMethodRef(Ref));
  }

  // System.out / System.err, the most common static field refs.
  for (const char *Name : {"out", "err"}) {
    MFieldRef Ref;
    Ref.Owner = SeedClass("java/lang/System");
    Ref.Name = M.internFieldName(Name);
    TypeDesc T;
    T.Base = 'L';
    T.ClassName = "java/io/PrintStream";
    Ref.Type = M.internTypeDesc(T);
    Preload(poolId(effectivePool(PoolKind::FieldStatic, Scheme)),
            M.internFieldRef(Ref));
  }
  return true;
}

} // namespace

bool cjpack::preloadStandardRefs(Model &M, RefEncoder &Enc,
                                 RefScheme Scheme) {
  return preloadInto(M, Scheme, [&](uint32_t Pool, uint32_t Object) {
    return Enc.preload(Pool, Object);
  });
}

bool cjpack::preloadStandardRefs(Model &M, RefDecoder &Dec,
                                 RefScheme Scheme) {
  return preloadInto(M, Scheme, [&](uint32_t Pool, uint32_t Object) {
    return Dec.preload(Pool, Object);
  });
}
