//===- CodeCommon.h - shared bytecode wire definitions ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definitions shared by the pack encoder and decoder for the bytecode
/// streams (§7): the pseudo-opcode code points used for stack-state
/// collapsed families (§7.1) and for typed constant loads (the paper's
/// LDC_Integer-style pseudo-opcodes, footnote 1), plus the annotated
/// operand record both sides use to drive the stack-state machine.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_CODECOMMON_H
#define CJPACK_PACK_CODECOMMON_H

#include "bytecode/StackState.h"
#include "coder/RefCoder.h"
#include "pack/Model.h"
#include <cstdint>

namespace cjpack {

/// Pseudo-opcode space: JVM opcodes end at 201 (jsr_w); the wire opcode
/// stream reuses the free byte values above that.
/// Families Add(1)..TypedReturn(18) map to 201+N, i.e. 202..219.
inline constexpr uint8_t PseudoFamilyBase = 201; // + (unsigned)OpFamily
static_assert(NumOpFamilies == 19, "pseudo-opcode layout assumes 18 "
                                   "collapse families after None");

/// Typed constant-load pseudo-opcodes (just above the family block).
inline constexpr uint8_t PseudoLdcInt = 220;
inline constexpr uint8_t PseudoLdcFloat = 221;
inline constexpr uint8_t PseudoLdcString = 222;
inline constexpr uint8_t PseudoLdcWInt = 223;
inline constexpr uint8_t PseudoLdcWFloat = 224;
inline constexpr uint8_t PseudoLdcWString = 225;
inline constexpr uint8_t PseudoLdc2Long = 226;
inline constexpr uint8_t PseudoLdc2Double = 227;

inline bool isFamilyPseudo(uint8_t Code) {
  return Code > PseudoFamilyBase &&
         Code <= PseudoFamilyBase + static_cast<uint8_t>(NumOpFamilies) - 1;
}

inline OpFamily familyOfPseudo(uint8_t Code) {
  assert(isFamilyPseudo(Code));
  return static_cast<OpFamily>(Code - PseudoFamilyBase);
}

inline uint8_t pseudoOfFamily(OpFamily F) {
  return static_cast<uint8_t>(PseudoFamilyBase + static_cast<uint8_t>(F));
}

/// Extra bits OR'd into the 16-bit access flags on the wire (§4:
/// "Generic Attributes have been eliminated. Instead, additional flags
/// are set in the access flags").
/// Aux0: class = has superclass; field = has ConstantValue;
///       method = has Code.
/// Aux1: method = has Exceptions.
inline constexpr uint32_t PackedFlagAux0 = 1u << 16;
inline constexpr uint32_t PackedFlagAux1 = 1u << 17;
inline constexpr uint32_t PackedFlagSynthetic = 1u << 18;
inline constexpr uint32_t PackedFlagDeprecated = 1u << 19;

/// Kinds of constant operands carried by bytecode instructions, used to
/// route them to the right stream/pool.
enum class ConstKind : uint8_t {
  None,
  Int,
  Float,
  Long,
  Double,
  String,
  ClassTarget, ///< new/anewarray/checkcast/instanceof/multianewarray
  Field,
  Method,
};

/// The decoded/interned operand of one instruction.
struct CodeOperand {
  ConstKind Kind = ConstKind::None;
  int64_t IntValue = 0;  ///< Int constants
  uint64_t RawBits = 0;  ///< Float/Long/Double raw bits
  uint32_t Id = 0;       ///< model id for String/Class/Field/Method
};

/// Stack-machine type of a loaded constant of kind \p K.
inline VType constVType(ConstKind K) {
  switch (K) {
  case ConstKind::Int: return VType::Int;
  case ConstKind::Float: return VType::Float;
  case ConstKind::Long: return VType::Long;
  case ConstKind::Double: return VType::Double;
  case ConstKind::String: return VType::Ref;
  default: return VType::Unknown;
  }
}

/// Builds the InsnTypes record the stack machine needs for \p I, using
/// the model to resolve field types and method signatures.
InsnTypes insnTypesFor(const Model &M, const Insn &I,
                       const CodeOperand &Operand);

/// Width in locals slots of \p T (long/double take two).
inline unsigned vtypeWidth(VType T) {
  return (T == VType::Long || T == VType::Double) ? 2 : 1;
}

/// The invokeinterface count operand, reconstructed from the signature.
unsigned invokeInterfaceCount(const Model &M,
                              const std::vector<uint32_t> &Sig);

/// The RefCoder pool for a method invocation opcode.
PoolKind methodPoolFor(Op O);

/// The RefCoder pool for a field access opcode.
PoolKind fieldPoolFor(Op O);

/// §5.1.1: the Simple baseline keeps a single pool for all method
/// references and a single pool for all field references; every other
/// scheme splits pools per kind. Both sides of the wire apply this map.
PoolKind effectivePool(PoolKind K, RefScheme S);

} // namespace cjpack

#endif // CJPACK_PACK_CODECOMMON_H
