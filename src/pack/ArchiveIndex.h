//===- ArchiveIndex.h - per-class index of a v3 archive --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The version-3 archive's random-access index: where each shard's
/// stream blob lives inside the archive and which (shard, ordinal) pair
/// holds each class. The index frame sits right after the archive
/// header and is stored uncompressed, so listing an archive's classes
/// touches no inflate at all — the first lazy-read invariant. Shard
/// blobs are recorded as (offset, length) pairs relative to the start
/// of the blob region and must be exactly contiguous: the offsets are
/// redundant with the lengths by construction, and deserialize rejects
/// any index whose extents overlap, leave gaps, or are misordered, so
/// a hostile index can never alias two shards onto the same bytes.
///
/// Within a shard, classes are addressed by ordinal — their position in
/// the shard's decode order. The coder state is adaptive, so a reader
/// decodes a prefix of the shard up to the ordinal it needs; the eager
/// §11 class order keeps hot prefixes short.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_ARCHIVEINDEX_H
#define CJPACK_PACK_ARCHIVEINDEX_H

#include "support/ByteBuffer.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cjpack {

/// The per-class index of a version-3 archive.
struct ArchiveIndex {
  /// One shard blob's extent, relative to the blob region (the bytes
  /// after the dictionary frame).
  struct ShardExtent {
    uint64_t Offset = 0;
    uint64_t Length = 0;
  };

  /// One class's address: its internal name ("java/lang/String") and
  /// the shard + in-shard decode position holding it.
  struct ClassEntry {
    std::string Name;
    uint32_t Shard = 0;
    uint32_t Ordinal = 0;
  };

  std::vector<ShardExtent> Shards;
  /// In archive order: shard 0's classes by ordinal, then shard 1's...
  std::vector<ClassEntry> Classes;

  /// Total bytes of the blob region the shard extents promise.
  uint64_t blobBytes() const {
    uint64_t Total = 0;
    for (const ShardExtent &S : Shards)
      Total += S.Length;
    return Total;
  }

  /// Looks up a class by internal name; null when absent.
  const ClassEntry *find(const std::string &Name) const;

  /// Serializes the index frame body (no outer length prefix): shard
  /// count, class count, the shard extents, then the class entries.
  /// All varints; names are length-prefixed UTF-8 bytes.
  std::vector<uint8_t> serialize() const;

  /// Parses an index frame, consuming all of \p R. Validates every
  /// count against \p Limits, requires the shard extents to be exactly
  /// contiguous from offset zero, every class entry to name a valid
  /// shard, and names and (shard, ordinal) pairs to be unique — so a
  /// hostile index fails here with a typed Error, before any blob is
  /// touched. Ordinals are bounded against each shard's declared class
  /// count later, by the reader, once the shard's directory is open.
  static Expected<ArchiveIndex> deserialize(ByteReader &R,
                                            const DecodeLimits &Limits = {});

private:
  /// Lookup table built by deserialize/buildLookup: name -> Classes idx.
  std::map<std::string, size_t> ByName;

public:
  /// Rebuilds the name lookup (serialize-side construction helper;
  /// deserialize fills it as it validates). Returns an error on
  /// duplicate class names.
  Error buildLookup();
};

} // namespace cjpack

#endif // CJPACK_PACK_ARCHIVEINDEX_H
