//===- ArchiveReader.h - lazy reader for v3 archives -----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random access into a version-3 packed archive. A PackedArchiveReader
/// wraps a stable byte span (typically an InputFile's mmap), parses only
/// the header, index, and dictionary frames up front, and decodes shard
/// blobs on demand:
///
/// \code
///   auto F = InputFile::open("app.cjp");
///   auto Rd = PackedArchiveReader::open(F->data(), F->size());
///   auto CF = Rd->unpackClass("com/foo/Bar");   // inflates one shard,
///                                               // decodes a prefix
/// \endcode
///
/// The lazy-read invariants:
///   - open() inflates nothing: the index is stored uncompressed, so
///     listing classes touches only index pages.
///   - unpackClass() inflates exactly the shard blob holding the class
///     (plus the dictionary frame, once), and decodes only the shard's
///     record prefix up to the class's ordinal — the adaptive coder
///     state makes mid-shard seeks impossible by construction.
///   - Every inflate is charged to one shared DecodeBudget, so
///     inflatedBytes() measures what a request actually cost, and the
///     decompression-bomb cap applies across all lazy reads.
///
/// Decoded shard state is cached: a second class from the same shard
/// reuses the already-decoded prefix. A shard whose decode fails is
/// poisoned — the adaptive state is unrecoverable mid-stream — and
/// every later request against it returns the original error.
///
/// The reader does not own the archive bytes; they must stay valid and
/// unchanged for the reader's lifetime.
///
/// Thread safety: unpackClass() and unpackAll() may be called
/// concurrently from any number of threads over one shared reader (the
/// cjpackd archive cache shares hot readers across request threads).
/// Shard decode state is created under a reader-level mutex and each
/// shard's lazy decode is serialized by a per-shard mutex — the
/// adaptive coder state is inherently sequential — so requests against
/// different shards proceed in parallel while requests against the
/// same shard queue behind its decode. The budget counter is atomic.
/// Moving or destroying the reader itself concurrently with requests
/// remains undefined, as for any object.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_ARCHIVEREADER_H
#define CJPACK_PACK_ARCHIVEREADER_H

#include "classfile/ClassFile.h"
#include "coder/RefCoder.h"
#include "pack/ArchiveIndex.h"
#include "pack/Dictionary.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cjpack {

class PackedArchiveReader {
public:
  /// Opens a version-3 archive over \p Data (not copied, not owned).
  /// Validates the header, index frame, and dictionary frame, and that
  /// the shard extents exactly tile the rest of the archive. Rejects
  /// version-1/2 archives with a typed VersionMismatch error — those
  /// are decoded whole by unpackClasses. Inflates nothing except a
  /// compressed dictionary frame.
  static Expected<PackedArchiveReader>
  open(const uint8_t *Data, size_t Size, const DecodeLimits &Limits = {});
  static Expected<PackedArchiveReader>
  open(const std::vector<uint8_t> &Archive, const DecodeLimits &Limits = {});

  PackedArchiveReader(PackedArchiveReader &&) noexcept;
  PackedArchiveReader &operator=(PackedArchiveReader &&) noexcept;
  PackedArchiveReader(const PackedArchiveReader &) = delete;
  PackedArchiveReader &operator=(const PackedArchiveReader &) = delete;
  ~PackedArchiveReader();

  /// The archive's per-class index (class names in archive order,
  /// shard extents). Reading it costs no decoding.
  const ArchiveIndex &index() const { return Index; }

  /// Class internal names in archive order, from the index alone.
  std::vector<std::string> classNames() const;

  /// Decodes the single class \p InternalName ("com/foo/Bar"),
  /// inflating and decoding only what the lazy-read invariants above
  /// require. Unknown names fail with a plain error; a corrupt or
  /// truncated blob fails with the usual typed taxonomy.
  Expected<ClassFile> unpackClass(const std::string &InternalName);

  /// Decodes every indexed class, in archive order. Equivalent to
  /// unpackClass over classNames(), sharing the same shard cache.
  Expected<std::vector<ClassFile>> unpackAll();

  /// Total inflate output charged so far (dictionary + every shard
  /// blob decoded yet). The lazy-fewer-bytes property is observable
  /// here: after one unpackClass this is strictly less than what a
  /// full unpack of a multi-shard compressed archive charges.
  uint64_t inflatedBytes() const;

  RefScheme scheme() const { return Scheme; }
  size_t shardCount() const { return Index.Shards.size(); }
  size_t classCount() const { return Index.Classes.size(); }

private:
  struct ShardState;

  PackedArchiveReader();

  /// Returns shard \p K's state slot, allocating the (empty, unprepared)
  /// state on first use under the reader-level mutex. Cheap; never
  /// decodes.
  ShardState *shardSlot(size_t K);

  /// Deserializes and prepares shard \p K's blob into \p St. Caller
  /// holds St's mutex.
  Error prepareShardLocked(ShardState &St, size_t K);

  /// Decodes records of shard \p St up to and including \p Ordinal.
  /// Caller holds St's mutex.
  Error decodeUpTo(ShardState &St, uint32_t Ordinal);

  /// Materializes one indexed class entry from its decoded record.
  Expected<ClassFile> materializeEntry(const ArchiveIndex::ClassEntry &E);

  const uint8_t *Data = nullptr;
  size_t Size = 0;
  size_t BlobBase = 0;
  RefScheme Scheme = RefScheme::Basic;
  uint8_t Flags = 0;
  DecodeLimits Limits;
  ArchiveIndex Index;
  SharedDictionary Dict;
  /// unique_ptr because the spend counter is atomic (not movable).
  std::unique_ptr<DecodeBudget> Budget;
  /// Guards lazy creation of States slots (unique_ptr so the reader
  /// stays movable; the shard states themselves carry their own mutex).
  std::unique_ptr<std::mutex> StatesMu;
  std::vector<std::unique_ptr<ShardState>> States;
};

} // namespace cjpack

#endif // CJPACK_PACK_ARCHIVEREADER_H
