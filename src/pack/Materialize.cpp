//===- Materialize.cpp - class records back to classfiles -----------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Materialize.h"
#include "classfile/Transform.h"
#include "pack/Transcode.h"

using namespace cjpack;

namespace {

class Materializer {
public:
  explicit Materializer(const Model &M) : M(M) {}

  Expected<ClassFile> run(const ClassRec &DC) {
    ClassFile CF;
    CF.MinorVersion = static_cast<uint16_t>(DC.MinorVersion);
    CF.MajorVersion = static_cast<uint16_t>(DC.MajorVersion);
    CF.AccessFlags = static_cast<uint16_t>(DC.Flags & 0xFFFF);

    // §9: materialize constants referenced by one-byte ldc first so
    // they land at the smallest constant-pool indices.
    for (const MethodRec &DM : DC.Methods) {
      if (!DM.Code)
        continue;
      for (size_t K = 0; K < DM.Code->Insns.size(); ++K)
        if (DM.Code->Insns[K].Opcode == Op::Ldc)
          addConst(CF, DM.Code->Operands[K]);
    }

    CF.ThisClass = CF.CP.addClass(M.classRefInternalName(DC.ThisId));
    CF.SuperClass =
        DC.HasSuper ? CF.CP.addClass(M.classRefInternalName(DC.SuperId))
                    : 0;
    for (uint32_t Iface : DC.Interfaces)
      CF.Interfaces.push_back(
          CF.CP.addClass(M.classRefInternalName(Iface)));
    if (DC.Flags & PackedFlagSynthetic)
      CF.Attributes.push_back({"Synthetic", {}});
    if (DC.Flags & PackedFlagDeprecated)
      CF.Attributes.push_back({"Deprecated", {}});

    for (const FieldRec &F : DC.Fields) {
      auto MI = materializeField(CF, F);
      if (!MI)
        return MI.takeError();
      CF.Fields.push_back(std::move(*MI));
    }
    for (const MethodRec &DM : DC.Methods) {
      auto MI = materializeMethod(CF, DM);
      if (!MI)
        return MI.takeError();
      CF.Methods.push_back(std::move(*MI));
    }

    if (auto E = canonicalizeConstantPool(CF))
      return E;
    return CF;
  }

private:
  uint16_t addConst(ClassFile &CF, const CodeOperand &C) {
    switch (C.Kind) {
    case ConstKind::Int:
      return CF.CP.addInteger(static_cast<int32_t>(C.IntValue));
    case ConstKind::Float:
      return CF.CP.addFloat(static_cast<uint32_t>(C.RawBits));
    case ConstKind::Long:
      return CF.CP.addLong(static_cast<int64_t>(C.RawBits));
    case ConstKind::Double:
      return CF.CP.addDouble(C.RawBits);
    case ConstKind::String:
      return CF.CP.addString(M.stringConst(C.Id));
    default:
      assert(false && "not a loadable constant");
      return 0;
    }
  }

  void addMemberMarkers(MemberInfo &MI, uint32_t Flags) {
    if (Flags & PackedFlagSynthetic)
      MI.Attributes.push_back({"Synthetic", {}});
    if (Flags & PackedFlagDeprecated)
      MI.Attributes.push_back({"Deprecated", {}});
  }

  Expected<MemberInfo> materializeField(ClassFile &CF,
                                        const FieldRec &F) {
    const MFieldRef &Ref = M.fieldRef(F.RefId);
    MemberInfo MI;
    MI.AccessFlags = static_cast<uint16_t>(F.Flags & 0xFFFF);
    MI.NameIndex = CF.CP.addUtf8(M.fieldName(Ref.Name));
    MI.DescriptorIndex =
        CF.CP.addUtf8(printTypeDesc(M.classRefTypeDesc(Ref.Type)));
    if (F.Flags & PackedFlagAux0) {
      uint16_t CpIdx = addConst(CF, F.Const);
      ByteWriter W;
      W.writeU2(CpIdx);
      MI.Attributes.push_back({"ConstantValue", CF.arena().adopt(W.take())});
    }
    addMemberMarkers(MI, F.Flags);
    return MI;
  }

  Expected<MemberInfo> materializeMethod(ClassFile &CF,
                                         const MethodRec &DM) {
    const MMethodRef &Ref = M.methodRef(DM.RefId);
    MemberInfo MI;
    MI.AccessFlags = static_cast<uint16_t>(DM.Flags & 0xFFFF);
    MI.NameIndex = CF.CP.addUtf8(M.methodName(Ref.Name));
    MI.DescriptorIndex = CF.CP.addUtf8(M.signatureDescriptor(Ref.Sig));
    if (DM.Code) {
      auto Attr = materializeCode(CF, *DM.Code);
      if (!Attr)
        return Attr.takeError();
      MI.Attributes.push_back(std::move(*Attr));
    }
    if (DM.Flags & PackedFlagAux1) {
      ByteWriter W;
      W.writeU2(static_cast<uint16_t>(DM.Exceptions.size()));
      for (uint32_t C : DM.Exceptions)
        W.writeU2(CF.CP.addClass(M.classRefInternalName(C)));
      MI.Attributes.push_back({"Exceptions", CF.arena().adopt(W.take())});
    }
    addMemberMarkers(MI, DM.Flags);
    return MI;
  }

  Expected<AttributeInfo> materializeCode(ClassFile &CF,
                                          const CodeRec &DC) {
    CodeAttribute Code;
    Code.MaxStack = static_cast<uint16_t>(DC.MaxStack);
    Code.MaxLocals = static_cast<uint16_t>(DC.MaxLocals);

    std::vector<Insn> Insns = DC.Insns;
    for (size_t K = 0; K < Insns.size(); ++K) {
      Insn &I = Insns[K];
      const CodeOperand &C = DC.Operands[K];
      switch (C.Kind) {
      case ConstKind::None:
        break;
      case ConstKind::Int:
      case ConstKind::Float:
      case ConstKind::Long:
      case ConstKind::Double:
      case ConstKind::String:
        I.CpIndex = addConst(CF, C);
        break;
      case ConstKind::ClassTarget:
        I.CpIndex = CF.CP.addClass(M.classRefInternalName(C.Id));
        break;
      case ConstKind::Field: {
        const MFieldRef &R = M.fieldRef(C.Id);
        I.CpIndex = CF.CP.addRef(
            CpTag::FieldRef, M.classRefInternalName(R.Owner),
            M.fieldName(R.Name),
            printTypeDesc(M.classRefTypeDesc(R.Type)));
        break;
      }
      case ConstKind::Method: {
        const MMethodRef &R = M.methodRef(C.Id);
        CpTag Tag = I.Opcode == Op::InvokeInterface
                        ? CpTag::InterfaceMethodRef
                        : CpTag::MethodRef;
        I.CpIndex = CF.CP.addRef(Tag, M.classRefInternalName(R.Owner),
                                 M.methodName(R.Name),
                                 M.signatureDescriptor(R.Sig));
        break;
      }
      }
      if (I.Opcode == Op::Ldc && I.CpIndex > 0xFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: ldc constant escaped the low "
                         "constant-pool indices");
    }
    std::vector<uint8_t> CodeBytes = encodeCode(Insns);
    Code.Code = CodeBytes;

    for (const CodeRec::Handler &E : DC.Table) {
      ExceptionTableEntry T;
      T.StartPc = static_cast<uint16_t>(E.StartPc);
      T.EndPc = static_cast<uint16_t>(E.EndPc);
      T.HandlerPc = static_cast<uint16_t>(E.HandlerPc);
      T.CatchType =
          E.HasCatch
              ? CF.CP.addClass(M.classRefInternalName(E.CatchClass))
              : 0;
      Code.ExceptionTable.push_back(T);
    }
    return encodeCodeAttribute(Code, CF.CP);
  }

  const Model &M;
};

} // namespace

Expected<ClassFile> cjpack::materializeClass(const Model &M,
                                             const ClassRec &Rec) {
  Materializer Mat(M);
  return Mat.run(Rec);
}
