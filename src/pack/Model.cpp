//===- Model.cpp - the restructured classfile model (Fig. 1) --------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Model.h"

using namespace cjpack;

void cjpack::splitClassName(std::string_view Internal,
                            std::string &Package, std::string &Simple) {
  size_t Slash = Internal.rfind('/');
  if (Slash == std::string_view::npos) {
    Package.clear();
    Simple = Internal;
  } else {
    Package = Internal.substr(0, Slash);
    Simple = Internal.substr(Slash + 1);
  }
}

namespace {

template <typename MapT, typename VecT, typename KeyT>
uint32_t internInto(MapT &Ids, VecT &Items, const KeyT &Key) {
  auto It = Ids.find(Key);
  if (It != Ids.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Items.size());
  Items.emplace_back(Key);
  Ids.emplace(Key, Id);
  return Id;
}

} // namespace

uint32_t Model::internPackage(std::string_view Name) {
  return internInto(PackageIds, Packages, Name);
}
uint32_t Model::internSimpleName(std::string_view Name) {
  return internInto(SimpleIds, Simples, Name);
}
uint32_t Model::internFieldName(std::string_view Name) {
  return internInto(FieldNameIds, FieldNames, Name);
}
uint32_t Model::internMethodName(std::string_view Name) {
  return internInto(MethodNameIds, MethodNames, Name);
}
uint32_t Model::internStringConst(std::string_view Value) {
  return internInto(StringIds, Strings, Value);
}
uint32_t Model::internClassRef(const MClassRef &Ref) {
  return internInto(ClassRefIds, ClassRefs, Ref);
}
uint32_t Model::internFieldRef(const MFieldRef &Ref) {
  return internInto(FieldRefIds, FieldRefs, Ref);
}
uint32_t Model::internMethodRef(const MMethodRef &Ref) {
  return internInto(MethodRefIds, MethodRefs, Ref);
}

Expected<uint32_t>
Model::internClassByInternalName(std::string_view Name) {
  if (!Name.empty() && Name[0] == '[') {
    auto T = parseFieldDescriptor(Name);
    if (!T)
      return T.takeError();
    return internTypeDesc(*T);
  }
  MClassRef Ref;
  std::string Package, Simple;
  splitClassName(Name, Package, Simple);
  Ref.Package = internPackage(Package);
  Ref.Simple = internSimpleName(Simple);
  return internClassRef(Ref);
}

uint32_t Model::internTypeDesc(const TypeDesc &T) {
  MClassRef Ref;
  Ref.Dims = T.Dims;
  Ref.Base = T.Base;
  if (T.Base == 'L') {
    std::string Package, Simple;
    splitClassName(T.ClassName, Package, Simple);
    Ref.Package = internPackage(Package);
    Ref.Simple = internSimpleName(Simple);
  }
  return internClassRef(Ref);
}

Expected<std::vector<uint32_t>>
Model::internSignature(std::string_view Desc) {
  auto M = parseMethodDescriptor(Desc);
  if (!M)
    return M.takeError();
  std::vector<uint32_t> Sig;
  Sig.reserve(M->Params.size() + 1);
  Sig.push_back(internTypeDesc(M->Ret));
  for (const TypeDesc &P : M->Params)
    Sig.push_back(internTypeDesc(P));
  return Sig;
}

uint32_t Model::appendPackage(std::string Name) {
  return internPackage(Name);
}
uint32_t Model::appendSimpleName(std::string Name) {
  return internSimpleName(Name);
}
uint32_t Model::appendFieldName(std::string Name) {
  return internFieldName(Name);
}
uint32_t Model::appendMethodName(std::string Name) {
  return internMethodName(Name);
}
uint32_t Model::appendStringConst(std::string Value) {
  return internStringConst(Value);
}
uint32_t Model::appendClassRef(const MClassRef &Ref) {
  return internClassRef(Ref);
}
uint32_t Model::appendFieldRef(MFieldRef Ref) {
  return internFieldRef(Ref);
}
uint32_t Model::appendMethodRef(MMethodRef Ref) {
  return internMethodRef(Ref);
}

TypeDesc Model::classRefTypeDesc(uint32_t Id) const {
  const MClassRef &Ref = classRef(Id);
  TypeDesc T;
  T.Dims = Ref.Dims;
  T.Base = Ref.Base;
  if (Ref.Base == 'L') {
    const std::string &Pkg = package(Ref.Package);
    T.ClassName =
        Pkg.empty() ? simpleName(Ref.Simple) : Pkg + "/" + simpleName(Ref.Simple);
  }
  return T;
}

std::string Model::classRefInternalName(uint32_t Id) const {
  const MClassRef &Ref = classRef(Id);
  TypeDesc T = classRefTypeDesc(Id);
  if (Ref.Dims == 0 && Ref.Base == 'L')
    return T.ClassName;
  return printTypeDesc(T);
}

std::string
Model::signatureDescriptor(const std::vector<uint32_t> &Sig) const {
  assert(!Sig.empty() && "signature must contain a return type");
  MethodDesc M;
  M.Ret = classRefTypeDesc(Sig[0]);
  for (size_t I = 1; I < Sig.size(); ++I)
    M.Params.push_back(classRefTypeDesc(Sig[I]));
  return printMethodDesc(M);
}

void Model::signatureVTypes(const std::vector<uint32_t> &Sig,
                            std::vector<VType> &Args, VType &Ret) const {
  assert(!Sig.empty() && "signature must contain a return type");
  Ret = classRefVType(Sig[0]);
  Args.clear();
  for (size_t I = 1; I < Sig.size(); ++I)
    Args.push_back(classRefVType(Sig[I]));
}

VType Model::classRefVType(uint32_t Id) const {
  return vtypeOf(classRefTypeDesc(Id));
}
