//===- Stats.cpp - archive inspection without decoding --------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Stats.h"
#include "pack/ArchiveIndex.h"
#include "pack/Dictionary.h"
#include "support/VarInt.h"

using namespace cjpack;

namespace {

/// Reads one stream's directory entry and skips its stored bytes.
/// \p ShardCount distinguishes the version-1 layout (one raw length)
/// from the version-2 joint layout (one raw length per shard).
Error statStream(ByteReader &R, unsigned Index, size_t ShardCount,
                 const DecodeLimits &Limits, ArchiveStats &Stats) {
  StreamSizes &Sizes = Stats.Sizes;
  size_t HeaderStart = R.position();
  uint8_t Id = R.readU1();
  uint8_t Method = R.readU1();
  if (R.hasError() || Id != Index || !findBackend(Method))
    return makeError(ErrorCode::Corrupt,
                     "stats: corrupt stream header at byte " +
                         std::to_string(R.position()));
  uint64_t RawTotal = 0;
  for (size_t K = 0; K < ShardCount; ++K) {
    uint64_t Len = readVarUInt(R);
    if (R.hasError() || Len > Limits.MaxStreamBytes)
      return makeError(ErrorCode::LimitExceeded,
                       "stats: stream length over limit at byte " +
                           std::to_string(R.position()));
    RawTotal += Len;
  }
  uint64_t StoredLen = readVarUInt(R);
  if (R.hasError() || RawTotal > Limits.MaxStreamBytes)
    return makeError(ErrorCode::LimitExceeded,
                     "stats: joint stream length over limit at byte " +
                         std::to_string(R.position()));
  // A stored-as-is stream must declare matching sizes; a compressed one
  // must at least not promise more bytes than the archive holds (the
  // skip below enforces that).
  if (Method == 0 && StoredLen != RawTotal)
    return makeError(ErrorCode::Corrupt, "stats: stored size mismatch");
  size_t HeaderLen = R.position() - HeaderStart;
  if (!R.skip(static_cast<size_t>(StoredLen)))
    return makeError(ErrorCode::Truncated,
                     "stats: truncated stream payload at byte " +
                         std::to_string(R.position()));
  // Accumulating (not assigning) lets the version-3 walk call this once
  // per shard blob and roll the per-stream totals up across blobs.
  Sizes.Raw[Index] += static_cast<size_t>(RawTotal);
  Sizes.Packed[Index] += HeaderLen + static_cast<size_t>(StoredLen);
  Stats.BackendPacked[Method] += HeaderLen + static_cast<size_t>(StoredLen);
  Stats.BackendStreams[Method] += 1;
  return Error::success();
}

} // namespace

Expected<ArchiveStats>
cjpack::statPackedArchive(const std::vector<uint8_t> &Archive,
                          const DecodeLimits &Limits) {
  ByteReader R(Archive);
  uint32_t Magic = R.readU4();
  if (R.hasError() || Magic != 0x434A504Bu)
    return makeError(R.hasError() ? ErrorCode::Truncated : ErrorCode::Corrupt,
                     "stats: bad magic");
  ArchiveStats Stats;
  Stats.ArchiveBytes = Archive.size();
  Stats.Version = R.readU1();
  if (Stats.Version != FormatVersionSerial &&
      Stats.Version != FormatVersionSharded &&
      Stats.Version != FormatVersionIndexed)
    return makeError(ErrorCode::VersionMismatch,
                     "stats: unsupported format version " +
                         std::to_string(Stats.Version));
  uint8_t Scheme = R.readU1();
  if (Scheme > static_cast<uint8_t>(RefScheme::MtfTransientsContext))
    return makeError(ErrorCode::Corrupt, "stats: unknown reference scheme");
  Stats.Scheme = static_cast<RefScheme>(Scheme);
  uint8_t Flags = R.readU1();
  if (R.hasError())
    return makeError(ErrorCode::Truncated,
                     "stats: truncated archive header");
  Stats.CollapseOpcodes = (Flags & 1) != 0;
  Stats.CompressStreams = (Flags & 2) != 0;
  Stats.PreloadStandardRefs = (Flags & 4) != 0;
  Stats.BackendCode = (Flags >> BackendFlagShift) & BackendFlagMask;
  if (Stats.BackendCode > ArchiveBackendMixed)
    return makeError(ErrorCode::Corrupt,
                     "stats: unknown archive backend code");
  Stats.HeaderBytes = R.position();

  if (Stats.Version == FormatVersionIndexed) {
    // Version 3: index length prefix, the index frame, the dictionary
    // frame, then one complete stream directory per shard blob. The
    // prefix is charged to IndexBytes (matching PackResult::IndexBytes:
    // all bytes that exist only for random access). The index is
    // authoritative for the blob extents; the walk checks every blob
    // parses to exactly its indexed length.
    size_t LenStart = R.position();
    uint64_t IndexLen = readVarUInt(R);
    if (R.hasError())
      return R.takeError("stats");
    if (IndexLen > R.remaining())
      return makeError(ErrorCode::Truncated,
                       "stats: index frame extends past end of archive");
    if (IndexLen > Limits.MaxStreamBytes)
      return makeError(ErrorCode::LimitExceeded,
                       "stats: index frame length over limit");
    size_t PrefixLen = R.position() - LenStart;
    ByteReader IndexR(Archive.data() + R.position(),
                      static_cast<size_t>(IndexLen));
    auto Index = ArchiveIndex::deserialize(IndexR, Limits);
    if (!Index)
      return Index.takeError();
    R.skip(static_cast<size_t>(IndexLen));
    Stats.IndexBytes = PrefixLen + static_cast<size_t>(IndexLen);
    Stats.IndexedClasses = Index->Classes.size();
    Stats.Shards = Index->Shards.size();

    size_t DictStart = R.position();
    auto Dict = SharedDictionary::deserialize(R, Limits);
    if (!Dict)
      return Dict.takeError();
    Stats.DictionaryBytes = R.position() - DictStart;
    Stats.DictionaryEntries = Dict->entryCount();

    size_t BlobBase = R.position();
    uint64_t Region = Archive.size() - BlobBase;
    if (Index->blobBytes() > Region)
      return makeError(ErrorCode::Truncated,
                       "stats: shard blobs extend past end of archive");
    if (Index->blobBytes() < Region)
      return makeError(ErrorCode::Corrupt,
                       "stats: trailing bytes after shard blobs");
    for (const ArchiveIndex::ShardExtent &E : Index->Shards) {
      ByteReader Blob(Archive.data() + BlobBase + E.Offset,
                      static_cast<size_t>(E.Length));
      for (unsigned I = 0; I < NumStreams; ++I)
        if (auto Err = statStream(Blob, I, /*ShardCount=*/1, Limits, Stats))
          return Err;
      if (!Blob.atEnd())
        return makeError(ErrorCode::Corrupt,
                         "stats: trailing bytes in shard blob");
    }
    return Stats;
  }

  if (Stats.Version == FormatVersionSharded) {
    // The dictionary frame validates itself; we only need its extent
    // and entry count, so deserialize and discard the contents.
    size_t DictStart = R.position();
    auto Dict = SharedDictionary::deserialize(R, Limits);
    if (!Dict)
      return Dict.takeError();
    Stats.DictionaryBytes = R.position() - DictStart;
    Stats.DictionaryEntries = Dict->entryCount();

    // The shard-count varint is container framing, charged to the
    // header so the per-stream packed sizes still sum to the payload.
    size_t CountStart = R.position();
    uint64_t Count = readVarUInt(R);
    if (R.hasError() || Count == 0 || Count > MaxShards)
      return makeError(ErrorCode::Corrupt,
                       "stats: implausible shard count at byte " +
                           std::to_string(R.position()));
    Stats.HeaderBytes += R.position() - CountStart;
    Stats.Shards = static_cast<size_t>(Count);
  }

  for (unsigned I = 0; I < NumStreams; ++I)
    if (auto E = statStream(R, I, Stats.Shards, Limits, Stats))
      return E;

  if (R.position() != Archive.size())
    return makeError(ErrorCode::Corrupt,
                     "stats: trailing bytes after stream directory");
  return Stats;
}
