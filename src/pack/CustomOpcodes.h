//===- CustomOpcodes.h - digram custom opcodes (§7.2) ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §7.2 experiment: derive custom opcodes for frequent pairs of
/// adjacent opcodes — including skip-pairs, which leave a one-opcode
/// slot between the combined pair — choosing at each step the pair that
/// most reduces the estimated entropy of the stream (an opcode occurring
/// with frequency p is charged log2(1/p) bits). The paper found the
/// gzip'd result only slightly better than gzip on the raw opcode
/// stream and left the technique out of the shipping format; we keep it
/// as an ablation (bench_ablation_custom_ops).
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_CUSTOMOPCODES_H
#define CJPACK_PACK_CUSTOMOPCODES_H

#include <cstdint>
#include <vector>

namespace cjpack {

/// One derived opcode: the pair (First, Second) it replaces, with
/// \p Skip set when one original opcode sits between them (the skipped
/// opcode stays in the stream, after the new opcode).
struct CustomOp {
  uint16_t Code;   ///< symbol value of the new opcode
  uint16_t First;  ///< symbol it begins with (may itself be custom)
  uint16_t Second; ///< symbol it ends with (may itself be custom)
  bool Skip;       ///< skip-pair: First ? Second with a one-symbol gap
};

/// Result of the digram pass over a symbol stream.
struct CustomOpcodeResult {
  std::vector<uint16_t> Stream;    ///< rewritten symbol stream
  std::vector<CustomOp> Codebook;  ///< introduced opcodes, in order
  double EstimatedBitsBefore = 0;  ///< entropy estimate of the input
  double EstimatedBitsAfter = 0;   ///< entropy estimate of the output
};

/// Greedily introduces up to \p MaxNewOps custom opcodes (symbols
/// starting at \p FirstNewSymbol) into \p Opcodes, recalculating
/// frequencies after each introduction.
CustomOpcodeResult buildCustomOpcodes(const std::vector<uint8_t> &Opcodes,
                                      unsigned MaxNewOps,
                                      uint16_t FirstNewSymbol = 256);

/// Expands a rewritten stream back to the original opcodes (inverse of
/// buildCustomOpcodes; cheap, as the paper notes decompression is).
std::vector<uint8_t> expandCustomOpcodes(
    const std::vector<uint16_t> &Stream,
    const std::vector<CustomOp> &Codebook, uint16_t FirstNewSymbol = 256);

} // namespace cjpack

#endif // CJPACK_PACK_CUSTOMOPCODES_H
