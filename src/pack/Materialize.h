//===- Materialize.h - class records back to classfiles --------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a decoded wire record (Transcode.h) plus the model it indexes
/// into a standard ClassFile. Reconstruction assigns int/float/string
/// constants the smallest constant-pool indices so every ldc operand
/// fits in one byte (§9), then canonicalizes the pool, making
/// decompression deterministic (§12). Shared by the eager archive
/// decoder (Decoder.cpp) and the lazy random-access reader
/// (ArchiveReader.h), so both produce identical classfiles.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_MATERIALIZE_H
#define CJPACK_PACK_MATERIALIZE_H

#include "classfile/ClassFile.h"
#include "support/Error.h"

namespace cjpack {

class Model;
struct ClassRec;

/// Materializes \p Rec (whose ids index \p M) into a classfile.
Expected<ClassFile> materializeClass(const Model &M, const ClassRec &Rec);

} // namespace cjpack

#endif // CJPACK_PACK_MATERIALIZE_H
