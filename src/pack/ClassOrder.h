//===- ClassOrder.h - eager-loading class order (§11) ----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orders classes so that each class's superclass and interfaces appear
/// before it when they are in the same archive — the property §11 needs
/// for eager class loading (defineClass as bytes arrive, no buffering).
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_CLASSORDER_H
#define CJPACK_PACK_CLASSORDER_H

#include "classfile/ClassFile.h"
#include <cstddef>
#include <vector>

namespace cjpack {

/// Returns indices into \p Classes in a supertype-first topological
/// order, stable with respect to the input order.
std::vector<size_t> eagerLoadOrder(const std::vector<ClassFile> &Classes);

/// True if every class is preceded by its in-archive supertypes.
bool isEagerLoadable(const std::vector<ClassFile> &Classes);

} // namespace cjpack

#endif // CJPACK_PACK_CLASSORDER_H
