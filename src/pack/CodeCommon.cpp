//===- CodeCommon.cpp - shared bytecode wire definitions ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/CodeCommon.h"

using namespace cjpack;

InsnTypes cjpack::insnTypesFor(const Model &M, const Insn &I,
                               const CodeOperand &Operand) {
  InsnTypes T;
  switch (I.Opcode) {
  case Op::Ldc:
  case Op::LdcW:
  case Op::Ldc2W:
    T.ConstType = constVType(Operand.Kind);
    break;
  case Op::GetField:
  case Op::PutField:
  case Op::GetStatic:
  case Op::PutStatic:
    assert(Operand.Kind == ConstKind::Field);
    T.FieldType = M.classRefVType(M.fieldRef(Operand.Id).Type);
    break;
  case Op::InvokeVirtual:
  case Op::InvokeSpecial:
  case Op::InvokeStatic:
  case Op::InvokeInterface:
    assert(Operand.Kind == ConstKind::Method);
    M.signatureVTypes(M.methodRef(Operand.Id).Sig, T.ArgTypes, T.RetType);
    break;
  default:
    break;
  }
  return T;
}

unsigned cjpack::invokeInterfaceCount(const Model &M,
                                      const std::vector<uint32_t> &Sig) {
  unsigned Count = 1; // the receiver
  for (size_t I = 1; I < Sig.size(); ++I)
    Count += vtypeWidth(M.classRefVType(Sig[I]));
  return Count;
}

PoolKind cjpack::methodPoolFor(Op O) {
  switch (O) {
  case Op::InvokeVirtual:
    return PoolKind::MethodVirtual;
  case Op::InvokeSpecial:
    return PoolKind::MethodSpecial;
  case Op::InvokeStatic:
    return PoolKind::MethodStatic;
  case Op::InvokeInterface:
    return PoolKind::MethodInterface;
  default:
    assert(false && "not an invoke opcode");
    return PoolKind::MethodVirtual;
  }
}

PoolKind cjpack::effectivePool(PoolKind K, RefScheme S) {
  if (S != RefScheme::Simple)
    return K;
  switch (K) {
  case PoolKind::MethodVirtual:
  case PoolKind::MethodSpecial:
  case PoolKind::MethodStatic:
  case PoolKind::MethodInterface:
    return PoolKind::MethodVirtual;
  case PoolKind::FieldInstance:
  case PoolKind::FieldStatic:
    return PoolKind::FieldInstance;
  default:
    return K;
  }
}

PoolKind cjpack::fieldPoolFor(Op O) {
  switch (O) {
  case Op::GetField:
  case Op::PutField:
    return PoolKind::FieldInstance;
  case Op::GetStatic:
  case Op::PutStatic:
    return PoolKind::FieldStatic;
  default:
    assert(false && "not a field opcode");
    return PoolKind::FieldInstance;
  }
}
