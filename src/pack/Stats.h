//===- Stats.h - archive inspection without decoding -----------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads the composition of a packed archive straight off the wire: per
/// stream the raw and stored byte counts from the stream directory, plus
/// the header, index, and dictionary framing, without inflating or
/// decoding any stream payload. The accounting obeys a sum identity
/// checked by tests: HeaderBytes + IndexBytes + DictionaryBytes +
/// sum(Sizes.Packed) == ArchiveBytes, and it matches the StreamSizes
/// the encoder reported when the archive was produced.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_STATS_H
#define CJPACK_PACK_STATS_H

#include "coder/RefCoder.h"
#include "pack/Streams.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <cstdint>
#include <vector>

namespace cjpack {

/// Wire-level composition of one packed archive.
struct ArchiveStats {
  /// Format version byte (FormatVersionSerial, FormatVersionSharded,
  /// or FormatVersionIndexed).
  uint8_t Version = 0;
  /// Reference-encoding scheme recorded in the header.
  RefScheme Scheme = RefScheme::MtfTransientsContext;
  /// Header option flags, decoded.
  bool CollapseOpcodes = false;
  bool CompressStreams = false;
  bool PreloadStandardRefs = false;
  /// Whole-archive backend code from flags bits 3..5 (advisory; see
  /// archiveBackendCodeName for the printable form).
  uint8_t BackendCode = 0;
  /// Shard count (1 for version-1 archives).
  size_t Shards = 1;
  /// Fixed header bytes, plus the shard-count varint for version 2 —
  /// framing not attributable to any stream.
  size_t HeaderBytes = 0;
  /// Version-3 archives: the per-class index frame including its length
  /// prefix — every byte that exists only for random access — and the
  /// class entries it addresses (0 for versions 1/2).
  size_t IndexBytes = 0;
  size_t IndexedClasses = 0;
  /// Serialized shared-dictionary frame (versions 2/3; 0 for version 1)
  /// and the definitions it carries.
  size_t DictionaryBytes = 0;
  size_t DictionaryEntries = 0;
  /// Whole-archive size, for ratio math.
  size_t ArchiveBytes = 0;
  /// Per-stream accounting. Raw is the declared pre-compression size,
  /// Packed is the stored size plus that stream's directory header, so
  /// packed sizes sum to the archive payload. Items is always zero:
  /// item counts are encoder telemetry, not wire data.
  StreamSizes Sizes;
  /// Per-backend accounting, keyed by wire method byte: packed bytes
  /// (stored + directory header, so sum(BackendPacked) ==
  /// Sizes.totalPacked()) and the number of stream directory entries
  /// that used each backend.
  std::array<size_t, NumBackends> BackendPacked{};
  std::array<size_t, NumBackends> BackendStreams{};
};

/// Parses the composition of \p Archive. Validates framing with the
/// same rigor as the decoder (magic, version, scheme, stream directory
/// order, declared lengths against \p Limits) but never inflates or
/// decodes stream contents, so it is cheap even for large archives.
/// Fails with a typed Error on any malformed or truncated framing,
/// including trailing bytes after the last stream.
Expected<ArchiveStats> statPackedArchive(const std::vector<uint8_t> &Archive,
                                         const DecodeLimits &Limits = {});

} // namespace cjpack

#endif // CJPACK_PACK_STATS_H
