//===- Dictionary.cpp - shared definitions across shards ------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Dictionary.h"
#include "support/VarInt.h"
#include "zip/Zlib.h"
#include <map>
#include <set>
#include <tuple>

using namespace cjpack;

namespace {

/// Value identity of a class reference, independent of any model's id
/// assignment: (dims, base, package string, simple string). Strings are
/// empty for non-'L' bases.
using ClassRefKey = std::tuple<uint8_t, char, std::string, std::string>;

ClassRefKey classRefKey(const Model &M, const MClassRef &R) {
  if (R.Base != 'L')
    return {R.Dims, R.Base, "", ""};
  return {R.Dims, R.Base, M.package(R.Package), M.simpleName(R.Simple)};
}

/// Serialized body cap: a dictionary list longer than the body has
/// bytes is corrupt (every entry costs at least one byte).
bool plausibleCount(uint64_t Count, const ByteReader &R) {
  return Count <= R.remaining();
}

} // namespace

void SharedDictionary::serialize(ByteWriter &W, bool Compress) const {
  ByteWriter Body;
  auto PutStrings = [&Body](const std::vector<std::string> &List) {
    writeVarUInt(Body, List.size());
    for (const std::string &S : List) {
      writeVarUInt(Body, S.size());
      Body.writeString(S);
    }
  };
  PutStrings(Packages);
  PutStrings(Simples);
  PutStrings(FieldNames);
  PutStrings(MethodNames);
  PutStrings(Strings);
  writeVarUInt(Body, ClassRefs.size());
  for (const DictClassRef &R : ClassRefs) {
    Body.writeU1(R.Dims);
    Body.writeU1(static_cast<uint8_t>(R.Base));
    if (R.Base == 'L') {
      writeVarUInt(Body, R.Package);
      writeVarUInt(Body, R.Simple);
    }
  }

  std::vector<uint8_t> Raw = Body.take();
  std::vector<uint8_t> Deflated;
  if (Compress && !Raw.empty()) {
    Deflated = deflateBytes(Raw);
    if (Deflated.size() >= Raw.size())
      Deflated.clear();
  }
  writeVarUInt(W, Raw.size());
  if (!Deflated.empty()) {
    writeVarUInt(W, Deflated.size());
    W.writeBytes(Deflated);
  } else {
    writeVarUInt(W, Raw.size());
    W.writeBytes(Raw);
  }
}

Expected<SharedDictionary>
SharedDictionary::deserialize(ByteReader &R, const DecodeLimits &Limits,
                              DecodeBudget *Budget) {
  uint64_t RawLen = readVarUInt(R);
  uint64_t StoredLen = readVarUInt(R);
  if (R.hasError() || StoredLen > RawLen || StoredLen > R.remaining())
    return makeError(ErrorCode::Corrupt,
                     "dictionary: implausible frame at byte " +
                         std::to_string(R.position()));
  if (RawLen > Limits.MaxStreamBytes)
    return makeError(ErrorCode::LimitExceeded,
                     "dictionary: frame length over limit");
  std::vector<uint8_t> Raw = R.readBytes(static_cast<size_t>(StoredLen));
  if (StoredLen < RawLen) {
    if (Budget)
      if (auto E = Budget->chargeInflate(RawLen, "dictionary"))
        return E;
    auto Inflated = inflateBytes(Raw, static_cast<size_t>(RawLen),
                                 static_cast<size_t>(RawLen));
    if (!Inflated)
      return Inflated.takeError();
    if (Inflated->size() != RawLen)
      return makeError(ErrorCode::Corrupt, "dictionary: size mismatch");
    Raw = std::move(*Inflated);
  }

  ByteReader Body(Raw);
  SharedDictionary D;
  auto GetStrings = [&Body](std::vector<std::string> &List) -> bool {
    uint64_t Count = readVarUInt(Body);
    if (Body.hasError() || !plausibleCount(Count, Body))
      return false;
    List.reserve(static_cast<size_t>(Count));
    for (uint64_t I = 0; I < Count; ++I) {
      size_t Len = static_cast<size_t>(readVarUInt(Body));
      List.push_back(Body.readString(Len));
      if (Body.hasError())
        return false;
    }
    return true;
  };
  if (!GetStrings(D.Packages) || !GetStrings(D.Simples) ||
      !GetStrings(D.FieldNames) || !GetStrings(D.MethodNames) ||
      !GetStrings(D.Strings))
    return makeError(ErrorCode::Corrupt,
                     "dictionary: truncated string table at byte " +
                         std::to_string(Body.position()));

  uint64_t RefCount = readVarUInt(Body);
  if (Body.hasError() || !plausibleCount(RefCount, Body))
    return makeError(ErrorCode::Corrupt,
                     "dictionary: implausible class-ref count");
  D.ClassRefs.reserve(static_cast<size_t>(RefCount));
  for (uint64_t I = 0; I < RefCount; ++I) {
    DictClassRef Ref;
    Ref.Dims = Body.readU1();
    Ref.Base = static_cast<char>(Body.readU1());
    if (Ref.Base == 'L') {
      Ref.Package = static_cast<uint32_t>(readVarUInt(Body));
      Ref.Simple = static_cast<uint32_t>(readVarUInt(Body));
      if (Ref.Package >= D.Packages.size() ||
          Ref.Simple >= D.Simples.size())
        return makeError(ErrorCode::Corrupt,
                         "dictionary: class ref names out of range");
    }
    if (Body.hasError())
      return makeError(ErrorCode::Corrupt, "dictionary: truncated class refs");
    D.ClassRefs.push_back(Ref);
  }
  return D;
}

SharedDictionary
cjpack::buildSharedDictionary(const std::vector<const Model *> &ShardModels,
                              const Model *Baseline) {
  // How many shards intern each value. Keys are values, not ids, so the
  // maps double as the deterministic (sorted) dictionary order.
  std::map<std::string, unsigned> PkgN, SimpN, FldN, MthN, StrN;
  std::map<ClassRefKey, unsigned> RefN;
  for (const Model *M : ShardModels) {
    for (size_t I = 0; I < M->packageCount(); ++I)
      ++PkgN[M->package(static_cast<uint32_t>(I))];
    for (size_t I = 0; I < M->simpleNameCount(); ++I)
      ++SimpN[M->simpleName(static_cast<uint32_t>(I))];
    for (size_t I = 0; I < M->fieldNameCount(); ++I)
      ++FldN[M->fieldName(static_cast<uint32_t>(I))];
    for (size_t I = 0; I < M->methodNameCount(); ++I)
      ++MthN[M->methodName(static_cast<uint32_t>(I))];
    for (size_t I = 0; I < M->stringConstCount(); ++I)
      ++StrN[M->stringConst(static_cast<uint32_t>(I))];
    for (size_t I = 0; I < M->classRefCount(); ++I)
      ++RefN[classRefKey(*M, M->classRef(static_cast<uint32_t>(I)))];
  }

  // Values the standard preload already seeds on both sides.
  std::set<std::string> BasePkg, BaseSimp, BaseFld, BaseMth, BaseStr;
  std::set<ClassRefKey> BaseRef;
  if (Baseline) {
    for (size_t I = 0; I < Baseline->packageCount(); ++I)
      BasePkg.insert(Baseline->package(static_cast<uint32_t>(I)));
    for (size_t I = 0; I < Baseline->simpleNameCount(); ++I)
      BaseSimp.insert(Baseline->simpleName(static_cast<uint32_t>(I)));
    for (size_t I = 0; I < Baseline->fieldNameCount(); ++I)
      BaseFld.insert(Baseline->fieldName(static_cast<uint32_t>(I)));
    for (size_t I = 0; I < Baseline->methodNameCount(); ++I)
      BaseMth.insert(Baseline->methodName(static_cast<uint32_t>(I)));
    for (size_t I = 0; I < Baseline->stringConstCount(); ++I)
      BaseStr.insert(Baseline->stringConst(static_cast<uint32_t>(I)));
    for (size_t I = 0; I < Baseline->classRefCount(); ++I)
      BaseRef.insert(
          classRefKey(*Baseline, Baseline->classRef(static_cast<uint32_t>(I))));
  }

  SharedDictionary D;
  std::map<std::string, uint32_t> PkgIdx, SimpIdx;
  auto AddPkg = [&](const std::string &S) -> uint32_t {
    auto [It, Fresh] =
        PkgIdx.try_emplace(S, static_cast<uint32_t>(D.Packages.size()));
    if (Fresh)
      D.Packages.push_back(S);
    return It->second;
  };
  auto AddSimp = [&](const std::string &S) -> uint32_t {
    auto [It, Fresh] =
        SimpIdx.try_emplace(S, static_cast<uint32_t>(D.Simples.size()));
    if (Fresh)
      D.Simples.push_back(S);
    return It->second;
  };

  for (const auto &[S, N] : PkgN)
    if (N >= 2 && !BasePkg.count(S))
      AddPkg(S);
  for (const auto &[S, N] : SimpN)
    if (N >= 2 && !BaseSimp.count(S))
      AddSimp(S);
  for (const auto &[S, N] : FldN)
    if (N >= 2 && !BaseFld.count(S))
      D.FieldNames.push_back(S);
  for (const auto &[S, N] : MthN)
    if (N >= 2 && !BaseMth.count(S))
      D.MethodNames.push_back(S);
  for (const auto &[S, N] : StrN)
    if (N >= 2 && !BaseStr.count(S))
      D.Strings.push_back(S);
  for (const auto &[Key, N] : RefN) {
    if (N < 2 || BaseRef.count(Key))
      continue;
    DictClassRef Ref;
    Ref.Dims = std::get<0>(Key);
    Ref.Base = std::get<1>(Key);
    if (Ref.Base == 'L') {
      // The ref's strings may have been excluded as baseline values;
      // force them in so the index space is self-contained.
      Ref.Package = AddPkg(std::get<2>(Key));
      Ref.Simple = AddSimp(std::get<3>(Key));
    }
    D.ClassRefs.push_back(Ref);
  }
  return D;
}

namespace {

/// Shared replay: intern each entry and preload it, in the one order
/// both sides reproduce. \p Preload forwards to the coder.
template <typename PreloadFn>
bool replayDictionary(Model &M, const SharedDictionary &D,
                      PreloadFn &&Preload) {
  if (D.empty())
    return true;
  for (const std::string &S : D.Packages)
    if (!Preload(poolId(PoolKind::Package), M.internPackage(S)))
      return false;
  for (const std::string &S : D.Simples)
    if (!Preload(poolId(PoolKind::SimpleName), M.internSimpleName(S)))
      return false;
  for (const std::string &S : D.FieldNames)
    if (!Preload(poolId(PoolKind::FieldName), M.internFieldName(S)))
      return false;
  for (const std::string &S : D.MethodNames)
    if (!Preload(poolId(PoolKind::MethodName), M.internMethodName(S)))
      return false;
  for (const std::string &S : D.Strings)
    if (!Preload(poolId(PoolKind::StringConst), M.internStringConst(S)))
      return false;
  for (const DictClassRef &R : D.ClassRefs) {
    MClassRef Ref;
    Ref.Dims = R.Dims;
    Ref.Base = R.Base;
    if (R.Base == 'L') {
      Ref.Package = M.internPackage(D.Packages[R.Package]);
      Ref.Simple = M.internSimpleName(D.Simples[R.Simple]);
    }
    if (!Preload(poolId(PoolKind::ClassRefPool), M.internClassRef(Ref)))
      return false;
  }
  return true;
}

} // namespace

bool cjpack::preloadDictionary(Model &M, RefEncoder &Enc,
                               const SharedDictionary &D) {
  return replayDictionary(M, D, [&](uint32_t Pool, uint32_t Object) {
    return Enc.preload(Pool, Object);
  });
}

bool cjpack::preloadDictionary(Model &M, RefDecoder &Dec,
                               const SharedDictionary &D) {
  return replayDictionary(M, D, [&](uint32_t Pool, uint32_t Object) {
    return Dec.preload(Pool, Object);
  });
}
