//===- Backend.h - pluggable compression backends --------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final compression stage behind a registry (tudocomp-style): each
/// stream's directory entry carries a method byte that IS the backend
/// wire id, so archives are self-describing (VXA-style) and every
/// stream of an archive can use a different backend.
///
/// Wire ids (the per-stream method byte):
///
///   0  store    bytes pass through unchanged
///   1  zlib     raw deflate, the default — archives produced with it
///               are byte-identical to pre-registry cjpack
///   2  huffman  canonical Huffman (coder/Huffman.h)
///   3  arith    adaptive arithmetic coder (coder/Arithmetic.h)
///
/// Encoders keep the historical "compress only if strictly smaller,
/// else store" fallback, so any archive may legitimately contain
/// method-0 streams regardless of the backend it was packed with.
///
/// The archive header additionally advertises a whole-archive backend
/// code in flags bits 3..5 — an advisory summary that works for v1/v2
/// headers too (0 = zlib/default keeps old archives bit-identical):
///
///   0 zlib   1 store   2 huffman   3 arith   4 mixed (per-stream)
///
/// Codes above 4 are reserved and rejected as Corrupt. The per-stream
/// method bytes remain authoritative for decoding.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_BACKEND_H
#define CJPACK_PACK_BACKEND_H

#include "support/Error.h"
#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace cjpack {

/// Registered backend ids. Values are the wire method bytes.
enum class BackendId : uint8_t {
  Store = 0,
  Zlib = 1,
  Huffman = 2,
  Arith = 3,
};

inline constexpr unsigned NumBackends = 4;

constexpr const char *backendName(BackendId Id) {
  switch (Id) {
  case BackendId::Store:
    return "store";
  case BackendId::Zlib:
    return "zlib";
  case BackendId::Huffman:
    return "huffman";
  case BackendId::Arith:
    return "arith";
  }
  return "?";
}

/// One registered backend. Compress is infallible (worst case the
/// encoder's smaller-than-raw check discards the result); Decompress
/// must cap its output at max(DeclaredRaw, 1) bytes and fail with
/// typed Truncated/Corrupt/LimitExceeded errors on hostile input.
/// Both sides take borrowed spans so decoders can hand archive slices
/// straight to a backend without an intermediate copy.
struct CompressionBackend {
  BackendId Id;
  const char *Name;
  std::vector<uint8_t> (*Compress)(std::span<const uint8_t> Raw);
  Expected<std::vector<uint8_t>> (*Decompress)(std::span<const uint8_t> Stored,
                                               size_t DeclaredRaw);
};

/// All registered backends, indexed by wire id.
const std::array<CompressionBackend, NumBackends> &allBackends();

/// Backend for a wire method byte, or nullptr if unknown.
const CompressionBackend *findBackend(uint8_t WireId);

/// Backend by CLI name ("store", "zlib", ...), or nullptr.
const CompressionBackend *findBackendByName(std::string_view Name);

//===----------------------------------------------------------------------===//
// Archive-header backend code (flags bits 3..5)
//===----------------------------------------------------------------------===//

inline constexpr uint8_t BackendFlagShift = 3;
inline constexpr uint8_t BackendFlagMask = 0x7;

/// Header code 4: streams use per-stream backend choices.
inline constexpr uint8_t ArchiveBackendMixed = 4;

/// Header code for a uniform backend. Zlib maps to 0 so default
/// archives keep their historical flag byte.
constexpr uint8_t archiveBackendCode(BackendId Id) {
  switch (Id) {
  case BackendId::Zlib:
    return 0;
  case BackendId::Store:
    return 1;
  case BackendId::Huffman:
    return 2;
  case BackendId::Arith:
    return 3;
  }
  return 0;
}

/// Printable name for a header backend code (callers must have
/// validated Code <= ArchiveBackendMixed).
constexpr const char *archiveBackendCodeName(uint8_t Code) {
  switch (Code) {
  case 0:
    return "zlib";
  case 1:
    return "store";
  case 2:
    return "huffman";
  case 3:
    return "arith";
  case ArchiveBackendMixed:
    return "mixed";
  }
  return "?";
}

} // namespace cjpack

#endif // CJPACK_PACK_BACKEND_H
