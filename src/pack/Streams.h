//===- Streams.h - separated wire streams (§4, §7) -------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packed format separates dissimilar data into independent byte
/// streams — opcodes, register numbers, integer constants, each kind of
/// reference, string lengths, string characters — and compresses each
/// with zlib (§4, §7, [EEF+97]). StreamSet is that container plus its
/// serialization. Every stream carries a reporting category so the
/// Table 6 composition columns (Strings/Opcodes/Ints/Refs/Misc) fall out
/// of the per-stream packed sizes.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_STREAMS_H
#define CJPACK_PACK_STREAMS_H

#include "support/ByteBuffer.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace cjpack {

/// Wire-format versions, written in the archive header after the
/// magic. Version 1 is the original single-shard layout: header, then
/// one serialized StreamSet. Version 2 is the sharded layout: header,
/// then the shared dictionary frame, then the shards' streams in the
/// grouped container written by serializeShardedStreams. Single-shard
/// archives are always written as version 1, so the sharded pipeline at
/// shard-count 1 is byte-identical to the original format. The
/// versioning rule: any change to the byte layout bumps the version,
/// and decoders must reject versions they do not know.
inline constexpr uint8_t FormatVersionSerial = 1;
inline constexpr uint8_t FormatVersionSharded = 2;

/// Upper bound on shards per archive; a header claiming more is corrupt.
inline constexpr size_t MaxShards = 4096;

/// The separated streams of the packed format.
enum class StreamId : uint8_t {
  Counts,           ///< structure counts, versions, lengths, misc headers
  Flags,            ///< access flags (with attribute-presence bits, §4)
  Registers,        ///< local-variable numbers from bytecode
  BranchOffsets,    ///< relative branch/switch targets
  IntConsts,        ///< bipush/sipush/iinc/ldc-int/switch keys/const fields
  FloatConsts,      ///< float constant raw bits
  LongConsts,       ///< long constant raw bits
  DoubleConsts,     ///< double constant raw bits
  Opcodes,          ///< opcode stream (with collapse/ldc pseudo-opcodes)
  PackageRefs,      ///< references to package names
  SimpleNameRefs,   ///< references to simple class names
  ClassRefs,        ///< references to ClassRef objects
  FieldNameRefs,    ///< references to field names
  MethodNameRefs,   ///< references to method names
  FieldRefs,        ///< references to FieldRef objects
  MethodRefs,       ///< references to MethodRef objects
  StringConstRefs,  ///< references to string constants
  StringLengths,    ///< lengths of all newly defined strings
  NameChars,        ///< characters of member names
  ClassNameChars,   ///< characters of package + simple class names
  StringConstChars, ///< characters of string constants
};

inline constexpr unsigned NumStreams =
    static_cast<unsigned>(StreamId::StringConstChars) + 1;

/// Reporting categories for Table 6's composition columns.
enum class StreamCategory : uint8_t { Strings, Opcodes, Ints, Refs, Misc };

/// Category of \p Id.
StreamCategory streamCategory(StreamId Id);

/// Printable names.
const char *streamName(StreamId Id);
const char *streamCategoryName(StreamCategory C);

/// Per-stream raw and packed byte counts, filled in by serialization.
struct StreamSizes {
  std::array<size_t, NumStreams> Raw{};
  std::array<size_t, NumStreams> Packed{};

  size_t totalRaw() const;
  size_t totalPacked() const;
  size_t packedOf(StreamCategory C) const;

  /// Accumulates \p Other stream-by-stream (shard totals roll up into
  /// one per-archive accounting).
  void add(const StreamSizes &Other);
};

/// A set of named byte streams being written or read.
class StreamSet {
public:
  /// Writer side: the sink for \p Id.
  ByteWriter &out(StreamId Id) {
    return Writers[static_cast<unsigned>(Id)];
  }

  /// Reader side: the source for \p Id (valid after deserialize).
  ByteReader &in(StreamId Id) {
    auto &Slot = Readers[static_cast<unsigned>(Id)];
    assert(Slot && "stream not deserialized");
    return *Slot;
  }

  /// Writer side: the finished raw bytes of \p Id.
  const std::vector<uint8_t> &raw(StreamId Id) const {
    return Writers[static_cast<unsigned>(Id)].data();
  }

  /// Reader side: installs \p Bytes as the full contents of \p Id.
  /// Used by the sharded container, which slices each stream's joint
  /// buffer back into per-shard stream sets.
  void adopt(StreamId Id, std::vector<uint8_t> Bytes);

  /// Serializes all written streams: per stream a header (id, raw size,
  /// stored size, method) followed by the deflate-compressed (or, when
  /// \p Compress is false, raw) bytes. \p Sizes receives the accounting.
  std::vector<uint8_t> serialize(bool Compress, StreamSizes *Sizes) const;

  /// Parses bytes produced by serialize. Declared lengths are checked
  /// against \p Limits.MaxStreamBytes before any allocation, and
  /// inflation is capped by the declared raw size.
  Error deserialize(ByteReader &R, const DecodeLimits &Limits = {});

private:
  std::array<ByteWriter, NumStreams> Writers;
  std::array<std::vector<uint8_t>, NumStreams> Buffers;
  std::array<std::unique_ptr<ByteReader>, NumStreams> Readers;
};

/// Serializes \p Shards into the version-2 grouped stream container.
/// Each of the NumStreams streams stores its shards' bytes concatenated
/// and compressed as one unit — per-shard compression would fragment
/// the compressor's context and cost several percent — with per-shard
/// raw lengths so the decoder can slice the shards back out and decode
/// them concurrently. Layout: varint shard count, then per stream in id
/// order: id byte, method byte, one varint raw length per shard, varint
/// stored length, stored bytes. The container is a pure function of the
/// shards' contents. \p Sizes receives the per-stream accounting, with
/// each stream charged its own directory header.
std::vector<uint8_t> serializeShardedStreams(
    const std::vector<StreamSet> &Shards, bool Compress,
    StreamSizes *Sizes);

/// Parses a container written by serializeShardedStreams back into
/// per-shard stream sets, validating the shard count and every
/// promised length against \p Limits before allocating.
Expected<std::vector<StreamSet>>
deserializeShardedStreams(ByteReader &R, const DecodeLimits &Limits = {});

} // namespace cjpack

#endif // CJPACK_PACK_STREAMS_H
