//===- Streams.h - separated wire streams (§4, §7) -------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packed format separates dissimilar data into independent byte
/// streams — opcodes, register numbers, integer constants, each kind of
/// reference, string lengths, string characters — and compresses each
/// with zlib (§4, §7, [EEF+97]). StreamSet is that container plus its
/// serialization. Every stream carries a reporting category so the
/// Table 6 composition columns (Strings/Opcodes/Ints/Refs/Misc) fall out
/// of the per-stream packed sizes.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_STREAMS_H
#define CJPACK_PACK_STREAMS_H

#include "pack/Backend.h"
#include "support/ByteBuffer.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace cjpack {

/// Wire-format versions, written in the archive header after the
/// magic. Version 1 is the original single-shard layout: header, then
/// one serialized StreamSet. Version 2 is the sharded layout: header,
/// then the shared dictionary frame, then the shards' streams in the
/// grouped container written by serializeShardedStreams. Single-shard
/// archives are always written as version 1, so the sharded pipeline at
/// shard-count 1 is byte-identical to the original format. Version 3
/// (opt-in via PackOptions::RandomAccessIndex) is the random-access
/// layout: header, then a per-class index frame, then the dictionary
/// frame, then each shard's streams serialized as an independent blob so
/// a reader can locate and inflate exactly one shard (ArchiveIndex.h,
/// ArchiveReader.h). The versioning rule: any change to the byte layout
/// bumps the version, and decoders must reject versions they do not
/// know with a typed VersionMismatch error.
inline constexpr uint8_t FormatVersionSerial = 1;
inline constexpr uint8_t FormatVersionSharded = 2;
inline constexpr uint8_t FormatVersionIndexed = 3;

/// Upper bound on shards per archive; a header claiming more is corrupt.
inline constexpr size_t MaxShards = 4096;

/// The separated streams of the packed format.
enum class StreamId : uint8_t {
  Counts,           ///< structure counts, versions, lengths, misc headers
  Flags,            ///< access flags (with attribute-presence bits, §4)
  Registers,        ///< local-variable numbers from bytecode
  BranchOffsets,    ///< relative branch/switch targets
  IntConsts,        ///< bipush/sipush/iinc/ldc-int/switch keys/const fields
  FloatConsts,      ///< float constant raw bits
  LongConsts,       ///< long constant raw bits
  DoubleConsts,     ///< double constant raw bits
  Opcodes,          ///< opcode stream (with collapse/ldc pseudo-opcodes)
  PackageRefs,      ///< references to package names
  SimpleNameRefs,   ///< references to simple class names
  ClassRefs,        ///< references to ClassRef objects
  FieldNameRefs,    ///< references to field names
  MethodNameRefs,   ///< references to method names
  FieldRefs,        ///< references to FieldRef objects
  MethodRefs,       ///< references to MethodRef objects
  StringConstRefs,  ///< references to string constants
  StringLengths,    ///< lengths of all newly defined strings
  NameChars,        ///< characters of member names
  ClassNameChars,   ///< characters of package + simple class names
  StringConstChars, ///< characters of string constants
};

inline constexpr unsigned NumStreams =
    static_cast<unsigned>(StreamId::StringConstChars) + 1;

/// Reporting categories for Table 6's composition columns.
enum class StreamCategory : uint8_t { Strings, Opcodes, Ints, Refs, Misc };

inline constexpr unsigned NumStreamCategories =
    static_cast<unsigned>(StreamCategory::Misc) + 1;

/// Category of \p Id. The switch is exhaustive with no default, so adding
/// a StreamId enumerator without classifying it breaks the -Werror build
/// (-Wswitch), and the static_asserts below keep the classification in
/// sync with NumStreams.
constexpr StreamCategory streamCategory(StreamId Id) {
  switch (Id) {
  case StreamId::StringLengths:
  case StreamId::NameChars:
  case StreamId::ClassNameChars:
  case StreamId::StringConstChars:
    return StreamCategory::Strings;
  case StreamId::Opcodes:
    return StreamCategory::Opcodes;
  case StreamId::IntConsts:
    return StreamCategory::Ints;
  case StreamId::PackageRefs:
  case StreamId::SimpleNameRefs:
  case StreamId::ClassRefs:
  case StreamId::FieldNameRefs:
  case StreamId::MethodNameRefs:
  case StreamId::FieldRefs:
  case StreamId::MethodRefs:
  case StreamId::StringConstRefs:
    return StreamCategory::Refs;
  case StreamId::Counts:
  case StreamId::Flags:
  case StreamId::Registers:
  case StreamId::BranchOffsets:
  case StreamId::FloatConsts:
  case StreamId::LongConsts:
  case StreamId::DoubleConsts:
    return StreamCategory::Misc;
  }
  return StreamCategory::Misc; // unreachable for in-range ids
}

/// Printable name of \p Id; exhaustive like streamCategory.
constexpr const char *streamName(StreamId Id) {
  switch (Id) {
  case StreamId::Counts: return "Counts";
  case StreamId::Flags: return "Flags";
  case StreamId::Registers: return "Registers";
  case StreamId::BranchOffsets: return "BranchOffsets";
  case StreamId::IntConsts: return "IntConsts";
  case StreamId::FloatConsts: return "FloatConsts";
  case StreamId::LongConsts: return "LongConsts";
  case StreamId::DoubleConsts: return "DoubleConsts";
  case StreamId::Opcodes: return "Opcodes";
  case StreamId::PackageRefs: return "PackageRefs";
  case StreamId::SimpleNameRefs: return "SimpleNameRefs";
  case StreamId::ClassRefs: return "ClassRefs";
  case StreamId::FieldNameRefs: return "FieldNameRefs";
  case StreamId::MethodNameRefs: return "MethodNameRefs";
  case StreamId::FieldRefs: return "FieldRefs";
  case StreamId::MethodRefs: return "MethodRefs";
  case StreamId::StringConstRefs: return "StringConstRefs";
  case StreamId::StringLengths: return "StringLengths";
  case StreamId::NameChars: return "NameChars";
  case StreamId::ClassNameChars: return "ClassNameChars";
  case StreamId::StringConstChars: return "StringConstChars";
  }
  return "?"; // unreachable for in-range ids
}

constexpr const char *streamCategoryName(StreamCategory C) {
  switch (C) {
  case StreamCategory::Strings: return "Strings";
  case StreamCategory::Opcodes: return "Opcodes";
  case StreamCategory::Ints: return "Ints";
  case StreamCategory::Refs: return "Refs";
  case StreamCategory::Misc: return "Misc";
  }
  return "?"; // unreachable for in-range categories
}

namespace detail {

/// True when every in-range StreamId has a real name (not the
/// out-of-range sentinel).
constexpr bool allStreamsNamed() {
  for (unsigned I = 0; I < NumStreams; ++I) {
    const char *Name = streamName(static_cast<StreamId>(I));
    if (Name[0] == '?' || Name[0] == '\0')
      return false;
  }
  return true;
}

/// Number of streams classified into \p C.
constexpr unsigned streamsInCategory(StreamCategory C) {
  unsigned N = 0;
  for (unsigned I = 0; I < NumStreams; ++I)
    if (streamCategory(static_cast<StreamId>(I)) == C)
      ++N;
  return N;
}

} // namespace detail

static_assert(detail::allStreamsNamed(),
              "every StreamId needs a printable name");
static_assert(detail::streamsInCategory(StreamCategory::Strings) == 4 &&
                  detail::streamsInCategory(StreamCategory::Opcodes) == 1 &&
                  detail::streamsInCategory(StreamCategory::Ints) == 1 &&
                  detail::streamsInCategory(StreamCategory::Refs) == 8 &&
                  detail::streamsInCategory(StreamCategory::Misc) == 7,
              "stream category composition changed; update Table 6 "
              "reporting and these expected counts");
static_assert(detail::streamsInCategory(StreamCategory::Strings) +
                      detail::streamsInCategory(StreamCategory::Opcodes) +
                      detail::streamsInCategory(StreamCategory::Ints) +
                      detail::streamsInCategory(StreamCategory::Refs) +
                      detail::streamsInCategory(StreamCategory::Misc) ==
                  NumStreams,
              "every stream must land in exactly one category");

/// Which compression backend each stream's final stage uses. The
/// serializers keep the "compress only if strictly smaller, else
/// store" fallback per stream, so a plan is a preference, not a
/// guarantee — the wire method byte records what actually happened.
struct BackendPlan {
  std::array<BackendId, NumStreams> Stream;

  BackendPlan() { Stream.fill(BackendId::Zlib); }

  static BackendPlan uniform(BackendId Id) {
    BackendPlan P;
    P.Stream.fill(Id);
    return P;
  }
};

/// Per-stream raw and packed byte counts, filled in by serialization,
/// plus item counts (varints, strings, fixed-width values written to the
/// stream) recorded by the encoder's emitting pass.
struct StreamSizes {
  std::array<size_t, NumStreams> Raw{};
  std::array<size_t, NumStreams> Packed{};
  std::array<uint64_t, NumStreams> Items{};

  size_t totalRaw() const;
  size_t totalPacked() const;
  size_t packedOf(StreamCategory C) const;
  uint64_t totalItems() const;

  /// Accumulates \p Other stream-by-stream (shard totals roll up into
  /// one per-archive accounting).
  void add(const StreamSizes &Other);
};

/// A set of named byte streams being written or read.
class StreamSet {
public:
  /// Writer side: the sink for \p Id.
  ByteWriter &out(StreamId Id) {
    return Writers[static_cast<unsigned>(Id)];
  }

  /// Reader side: the source for \p Id (valid after deserialize).
  ByteReader &in(StreamId Id) {
    auto &Slot = Readers[static_cast<unsigned>(Id)];
    assert(Slot && "stream not deserialized");
    return *Slot;
  }

  /// Writer side: the finished raw bytes of \p Id.
  const std::vector<uint8_t> &raw(StreamId Id) const {
    return Writers[static_cast<unsigned>(Id)].data();
  }

  /// Reader side: installs \p Bytes as the full contents of \p Id.
  /// Used by the sharded container, which slices each stream's joint
  /// buffer back into per-shard stream sets.
  void adopt(StreamId Id, std::vector<uint8_t> Bytes);

  /// Serializes all written streams: per stream a header (id, method,
  /// raw size, stored size) followed by the bytes as stored by the
  /// stream's planned backend (falling back to store when compression
  /// does not strictly shrink). \p Sizes receives the accounting.
  std::vector<uint8_t> serialize(const BackendPlan &Plan,
                                 StreamSizes *Sizes) const;

  /// Legacy entry point: \p Compress true is the uniform zlib plan
  /// (historical behavior, byte-identical), false is all-store.
  std::vector<uint8_t> serialize(bool Compress, StreamSizes *Sizes) const {
    return serialize(
        BackendPlan::uniform(Compress ? BackendId::Zlib : BackendId::Store),
        Sizes);
  }

  /// Parses bytes produced by serialize. Declared lengths are checked
  /// against \p Limits.MaxStreamBytes before any allocation, and
  /// inflation is capped by the declared raw size. \p Budget, when
  /// non-null, is charged for every byte of inflate output, so callers
  /// that decode many stream sets against one archive (the lazy reader)
  /// share one decompression-bomb bound and can account for how much
  /// they actually inflated.
  Error deserialize(ByteReader &R, const DecodeLimits &Limits = {},
                    DecodeBudget *Budget = nullptr);

private:
  std::array<ByteWriter, NumStreams> Writers;
  std::array<std::vector<uint8_t>, NumStreams> Buffers;
  std::array<std::unique_ptr<ByteReader>, NumStreams> Readers;
};

/// Serializes \p Shards into the version-2 grouped stream container.
/// Each of the NumStreams streams stores its shards' bytes concatenated
/// and compressed as one unit — per-shard compression would fragment
/// the compressor's context and cost several percent — with per-shard
/// raw lengths so the decoder can slice the shards back out and decode
/// them concurrently. Layout: varint shard count, then per stream in id
/// order: id byte, method byte, one varint raw length per shard, varint
/// stored length, stored bytes. The container is a pure function of the
/// shards' contents. \p Sizes receives the per-stream accounting, with
/// each stream charged its own directory header.
std::vector<uint8_t> serializeShardedStreams(
    const std::vector<StreamSet> &Shards, const BackendPlan &Plan,
    StreamSizes *Sizes);

/// Legacy entry point; see StreamSet::serialize(bool, ...).
inline std::vector<uint8_t> serializeShardedStreams(
    const std::vector<StreamSet> &Shards, bool Compress,
    StreamSizes *Sizes) {
  return serializeShardedStreams(
      Shards,
      BackendPlan::uniform(Compress ? BackendId::Zlib : BackendId::Store),
      Sizes);
}

/// Parses a container written by serializeShardedStreams back into
/// per-shard stream sets, validating the shard count and every
/// promised length against \p Limits before allocating.
Expected<std::vector<StreamSet>>
deserializeShardedStreams(ByteReader &R, const DecodeLimits &Limits = {});

} // namespace cjpack

#endif // CJPACK_PACK_STREAMS_H
