//===- Model.h - the restructured classfile model (Fig. 1) -----*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's restructured in-memory format (§4, Figure 1). Classnames
/// become (package name, simple class name) pairs; method and field
/// types become arrays of class references; primitive and array types
/// are special class references. Objects live in interned pools with
/// dense ids — the unit the reference coders (§5) operate on.
///
/// The same Model type serves the compressor (interning while
/// traversing classfiles) and the decompressor (pools filled in decode
/// order); ids correspond across the two sides because both perform the
/// identical traversal.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_MODEL_H
#define CJPACK_PACK_MODEL_H

#include "classfile/ClassFile.h"
#include "classfile/Descriptor.h"
#include "support/Error.h"
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cjpack {

/// The object pools of the packed format; doubles as the RefCoder pool
/// id space. Method pools are per invocation kind (§5.1).
enum class PoolKind : uint8_t {
  Package,
  SimpleName,
  ClassRefPool,
  FieldName,
  MethodName,
  FieldInstance,
  FieldStatic,
  MethodVirtual,
  MethodSpecial,
  MethodStatic,
  MethodInterface,
  StringConst,
};

inline uint32_t poolId(PoolKind K) { return static_cast<uint32_t>(K); }

inline constexpr unsigned NumPoolKinds =
    static_cast<unsigned>(PoolKind::StringConst) + 1;

/// Printable pool name for telemetry reporting; exhaustive over
/// PoolKind (-Wswitch keeps it in sync with the enum).
constexpr const char *poolName(PoolKind K) {
  switch (K) {
  case PoolKind::Package: return "Package";
  case PoolKind::SimpleName: return "SimpleName";
  case PoolKind::ClassRefPool: return "ClassRef";
  case PoolKind::FieldName: return "FieldName";
  case PoolKind::MethodName: return "MethodName";
  case PoolKind::FieldInstance: return "FieldInstance";
  case PoolKind::FieldStatic: return "FieldStatic";
  case PoolKind::MethodVirtual: return "MethodVirtual";
  case PoolKind::MethodSpecial: return "MethodSpecial";
  case PoolKind::MethodStatic: return "MethodStatic";
  case PoolKind::MethodInterface: return "MethodInterface";
  case PoolKind::StringConst: return "StringConst";
  }
  return "?"; // unreachable for in-range kinds
}

/// A class reference: \p Dims array dimensions over either a primitive
/// base or a (package, simple-name) class.
struct MClassRef {
  uint8_t Dims = 0;
  char Base = 'L'; ///< 'L' or a primitive descriptor letter
  uint32_t Package = 0;
  uint32_t Simple = 0;

  bool operator<(const MClassRef &O) const {
    return std::tie(Dims, Base, Package, Simple) <
           std::tie(O.Dims, O.Base, O.Package, O.Simple);
  }
};

/// A field reference: owner class, field name, field type.
struct MFieldRef {
  uint32_t Owner = 0;
  uint32_t Name = 0;
  uint32_t Type = 0;

  bool operator<(const MFieldRef &O) const {
    return std::tie(Owner, Name, Type) < std::tie(O.Owner, O.Name, O.Type);
  }
};

/// A method reference: owner class, method name, signature as class
/// references (return type first, then arguments).
struct MMethodRef {
  uint32_t Owner = 0;
  uint32_t Name = 0;
  std::vector<uint32_t> Sig;

  bool operator<(const MMethodRef &O) const {
    return std::tie(Owner, Name, Sig) < std::tie(O.Owner, O.Name, O.Sig);
  }
};

/// Interned pools for the restructured format.
class Model {
public:
  /// \name Interning (compressor side; idempotent)
  /// @{
  uint32_t internPackage(std::string_view Name);
  uint32_t internSimpleName(std::string_view Name);
  uint32_t internFieldName(std::string_view Name);
  uint32_t internMethodName(std::string_view Name);
  uint32_t internStringConst(std::string_view Value);
  uint32_t internClassRef(const MClassRef &Ref);
  uint32_t internFieldRef(const MFieldRef &Ref);
  uint32_t internMethodRef(const MMethodRef &Ref);

  /// Interns the class named by a Class constant-pool entry's name,
  /// which may be a plain internal name or an array descriptor.
  Expected<uint32_t> internClassByInternalName(std::string_view Name);

  /// Interns the class reference for a field/parameter type.
  uint32_t internTypeDesc(const TypeDesc &T);

  /// Interns a method descriptor as [return, args...] class refs.
  Expected<std::vector<uint32_t>> internSignature(std::string_view Desc);
  /// @}

  /// \name Appending (decompressor side: ids assigned in decode order)
  /// @{
  uint32_t appendPackage(std::string Name);
  uint32_t appendSimpleName(std::string Name);
  uint32_t appendFieldName(std::string Name);
  uint32_t appendMethodName(std::string Name);
  uint32_t appendStringConst(std::string Value);
  uint32_t appendClassRef(const MClassRef &Ref);
  uint32_t appendFieldRef(MFieldRef Ref);
  uint32_t appendMethodRef(MMethodRef Ref);
  /// @}

  /// \name Lookup
  /// @{
  const std::string &package(uint32_t Id) const { return Packages[Id]; }
  const std::string &simpleName(uint32_t Id) const { return Simples[Id]; }
  const std::string &fieldName(uint32_t Id) const { return FieldNames[Id]; }
  const std::string &methodName(uint32_t Id) const {
    return MethodNames[Id];
  }
  const std::string &stringConst(uint32_t Id) const { return Strings[Id]; }
  const MClassRef &classRef(uint32_t Id) const { return ClassRefs[Id]; }
  const MFieldRef &fieldRef(uint32_t Id) const { return FieldRefs[Id]; }
  const MMethodRef &methodRef(uint32_t Id) const { return MethodRefs[Id]; }
  /// @}

  /// \name Pool sizes (ids are dense, so these bound the id spaces)
  /// @{
  size_t packageCount() const { return Packages.size(); }
  size_t simpleNameCount() const { return Simples.size(); }
  size_t fieldNameCount() const { return FieldNames.size(); }
  size_t methodNameCount() const { return MethodNames.size(); }
  size_t stringConstCount() const { return Strings.size(); }
  size_t classRefCount() const { return ClassRefs.size(); }
  size_t fieldRefCount() const { return FieldRefs.size(); }
  size_t methodRefCount() const { return MethodRefs.size(); }
  /// @}

  /// Internal name of \p Id as a Class constant-pool entry would spell
  /// it ("java/util/Map", or "[I" / "[Lfoo/Bar;" for arrays).
  std::string classRefInternalName(uint32_t Id) const;

  /// \p Id as a field-descriptor TypeDesc.
  TypeDesc classRefTypeDesc(uint32_t Id) const;

  /// Descriptor string of the signature [ret, args...] in \p Sig.
  std::string signatureDescriptor(const std::vector<uint32_t> &Sig) const;

  /// Stack-machine types of \p Sig (arguments and return).
  void signatureVTypes(const std::vector<uint32_t> &Sig,
                       std::vector<VType> &Args, VType &Ret) const;

  /// Stack-machine type of the value of class ref \p Id.
  VType classRefVType(uint32_t Id) const;

private:
  std::vector<std::string> Packages, Simples, FieldNames, MethodNames,
      Strings;
  std::vector<MClassRef> ClassRefs;
  std::vector<MFieldRef> FieldRefs;
  std::vector<MMethodRef> MethodRefs;

  std::map<std::string, uint32_t, std::less<>> PackageIds, SimpleIds,
      FieldNameIds, MethodNameIds, StringIds;
  std::map<MClassRef, uint32_t> ClassRefIds;
  std::map<MFieldRef, uint32_t> FieldRefIds;
  std::map<MMethodRef, uint32_t> MethodRefIds;
};

/// Splits an internal class name into package and simple name ("" for
/// the default package).
void splitClassName(std::string_view Internal, std::string &Package,
                    std::string &Simple);

} // namespace cjpack

#endif // CJPACK_PACK_MODEL_H
