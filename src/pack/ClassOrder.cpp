//===- ClassOrder.cpp - eager-loading class order (§11) -------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/ClassOrder.h"
#include <map>
#include <string>
#include <string_view>

using namespace cjpack;

namespace {

struct OrderBuilder {
  const std::vector<ClassFile> &Classes;
  std::map<std::string, size_t, std::less<>> ByName;
  std::vector<uint8_t> State; ///< 0 unvisited, 1 on stack, 2 done
  std::vector<size_t> Order;

  explicit OrderBuilder(const std::vector<ClassFile> &Classes)
      : Classes(Classes), State(Classes.size(), 0) {
    for (size_t I = 0; I < Classes.size(); ++I)
      ByName.emplace(Classes[I].thisClassName(), I);
  }

  void visitName(std::string_view Name) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      visit(It->second);
  }

  void visit(size_t I) {
    if (State[I] != 0)
      return; // done, or an inheritance cycle (malformed input): skip
    State[I] = 1;
    const ClassFile &CF = Classes[I];
    if (CF.SuperClass != 0)
      visitName(CF.CP.className(CF.SuperClass));
    for (uint16_t Iface : CF.Interfaces)
      visitName(CF.CP.className(Iface));
    State[I] = 2;
    Order.push_back(I);
  }
};

} // namespace

std::vector<size_t>
cjpack::eagerLoadOrder(const std::vector<ClassFile> &Classes) {
  OrderBuilder B(Classes);
  for (size_t I = 0; I < Classes.size(); ++I)
    B.visit(I);
  return B.Order;
}

bool cjpack::isEagerLoadable(const std::vector<ClassFile> &Classes) {
  std::map<std::string, size_t, std::less<>> ByName;
  for (size_t I = 0; I < Classes.size(); ++I)
    ByName.emplace(Classes[I].thisClassName(), I);
  auto DefinedBefore = [&](std::string_view Name, size_t I) {
    auto It = ByName.find(Name);
    return It == ByName.end() || It->second < I;
  };
  for (size_t I = 0; I < Classes.size(); ++I) {
    const ClassFile &CF = Classes[I];
    if (CF.SuperClass != 0 &&
        !DefinedBefore(CF.CP.className(CF.SuperClass), I))
      return false;
    for (uint16_t Iface : CF.Interfaces)
      if (!DefinedBefore(CF.CP.className(Iface), I))
        return false;
  }
  return true;
}
