//===- Transcode.h - direction-neutral wire transcoder ---------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packed format's per-record wire layout, written once and driven
/// in both directions. Encoder.cpp and Decoder.cpp used to be two
/// hand-mirrored traversals; every format change had to be patched in
/// lockstep on both sides. Here each record's layout (class header,
/// constant-pool definitions, fields, methods, code) is a single
/// function over a shared record type, parameterized by a direction
/// context:
///
///  * Transcriber<EncodeContext> walks fully-populated records and
///    writes their streams (the record fields are inputs; every
///    x-function returns its input unchanged, so the shared assignments
///    are identities);
///  * Transcriber<DecodeContext> reads the streams and fills the same
///    records (the x-functions return what they read).
///
/// Decode-only validation (range checks, resource limits, the
/// poison-object error latch from the hostile-input hardening) lives in
/// `if constexpr (!Ctx::IsEncode)` blocks, so the encoder's behavior is
/// untouched by decoder hardening and vice versa. The convention keeps
/// the §3–§9 invariant — the decoder replays the encoder's model
/// decisions exactly — true by construction: there is only one
/// description of the wire layout to diverge from.
///
/// Telemetry: the encoding context carries an optional per-stream item
/// counter (StreamSizes::Items) and the coder's counted entry points
/// feed a CoderTally; both are observational and cannot change the
/// emitted bytes.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_PACK_TRANSCODE_H
#define CJPACK_PACK_TRANSCODE_H

#include "analysis/FlowState.h"
#include "bytecode/Instruction.h"
#include "coder/RefCoder.h"
#include "pack/CodeCommon.h"
#include "pack/Model.h"
#include "pack/Streams.h"
#include "support/DecodeLimits.h"
#include "support/Error.h"
#include "support/VarInt.h"
#include <array>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

namespace cjpack {

//===----------------------------------------------------------------------===//
// Shared wire records
//===----------------------------------------------------------------------===//

/// One method body on the wire. Insns/Operands are parallel arrays; the
/// operand record routes each instruction's constant to its stream.
struct CodeRec {
  uint32_t MaxStack = 0;
  uint32_t MaxLocals = 0;
  struct Handler {
    uint32_t StartPc = 0, EndPc = 0, HandlerPc = 0;
    bool HasCatch = false;
    uint32_t CatchClass = 0;
  };
  std::vector<Handler> Table;
  std::vector<Insn> Insns;
  std::vector<CodeOperand> Operands; ///< parallel to Insns
};

/// One field on the wire. Const is meaningful iff Flags has Aux0.
struct FieldRec {
  uint32_t Flags = 0;
  uint32_t RefId = 0;
  CodeOperand Const;
};

/// One method on the wire.
struct MethodRec {
  uint32_t Flags = 0;
  uint32_t RefId = 0;
  std::vector<uint32_t> Exceptions;
  std::optional<CodeRec> Code;
};

/// One class on the wire.
struct ClassRec {
  uint32_t MinorVersion = 0, MajorVersion = 0;
  uint32_t Flags = 0;
  uint32_t ThisId = 0;
  bool HasSuper = false;
  uint32_t SuperId = 0;
  std::vector<uint32_t> Interfaces;
  std::vector<FieldRec> Fields;
  std::vector<MethodRec> Methods;
};

/// The pool a method definition's reference is encoded in, derived from
/// information the decoder has before reading the reference. Shared so
/// the two directions cannot disagree.
inline PoolKind methodDefPool(uint32_t MethodFlags, uint32_t ClassFlags) {
  if (ClassFlags & AccInterface)
    return PoolKind::MethodInterface;
  if (MethodFlags & AccStatic)
    return PoolKind::MethodStatic;
  if (MethodFlags & AccPrivate)
    return PoolKind::MethodSpecial;
  return PoolKind::MethodVirtual;
}

//===----------------------------------------------------------------------===//
// Direction contexts
//===----------------------------------------------------------------------===//

/// Encoding side: a model whose ids the records already use, a
/// reference coder, and the stream sinks. Items, when non-null,
/// receives a per-stream count of values written (telemetry only).
struct EncodeContext {
  static constexpr bool IsEncode = true;

  Model &M;
  RefEncoder &Enc;
  StreamSet &S;
  RefScheme Scheme;
  bool Collapse;
  std::array<uint64_t, NumStreams> *Items = nullptr;

  void countItem(StreamId Id) {
    if (Items)
      ++(*Items)[static_cast<unsigned>(Id)];
  }
};

/// Decoding side: an empty model filled in decode order, a reference
/// decoder, stream sources, and the hostile-input state — resource
/// limits plus the poison-object error latch. The readers keep
/// returning in-bounds poison objects after a validation failure so
/// downstream model lookups stay safe; the next structural checkpoint
/// aborts the decode with the latched error.
struct DecodeContext {
  static constexpr bool IsEncode = false;

  Model &M;
  RefDecoder &Dec;
  StreamSet &S;
  RefScheme Scheme;
  DecodeLimits Limits;
  Error Latch{};

  /// Records the first wire-validation failure.
  void fail(ErrorCode Code, std::string Msg) {
    if (!Latch)
      Latch = makeError(Code, std::move(Msg));
  }

  /// An always-valid class-ref id used after a validation failure. The
  /// non-'L' base means nothing downstream indexes the string pools.
  uint32_t poisonClass() {
    MClassRef Void;
    Void.Base = 'V';
    return M.appendClassRef(Void);
  }
};

//===----------------------------------------------------------------------===//
// The transcriber
//===----------------------------------------------------------------------===//

template <typename Ctx> class Transcriber {
public:
  explicit Transcriber(Ctx &C) : C(C) {}

  /// The whole archive body: class count, then every class record.
  /// Encode walks \p Recs; decode fills it.
  Error transcodeArchive(std::vector<ClassRec> &Recs) {
    if constexpr (Ctx::IsEncode) {
      xVarU(StreamId::Counts, Recs.size());
      for (ClassRec &R : Recs)
        if (auto E = xClassRec(R))
          return E;
      return Error::success();
    } else {
      size_t Count = 0;
      if (auto E = beginArchive(Count))
        return E;
      Recs.reserve(Count);
      for (size_t I = 0; I < Count; ++I) {
        ClassRec R;
        if (auto E = transcodeOneClass(R))
          return E;
        Recs.push_back(std::move(R));
      }
      return Error::success();
    }
  }

  /// Decode side only: reads and validates the archive's class count
  /// without decoding any record. The adaptive coder state means class
  /// records are only decodable as a prefix in order, so incremental
  /// readers call this once and then transcodeOneClass per record.
  Error beginArchive(size_t &Count) {
    static_assert(!Ctx::IsEncode,
                  "beginArchive is for incremental decoding");
    ByteReader &Counts = C.S.in(StreamId::Counts);
    Count = static_cast<size_t>(readVarUInt(Counts));
    if (Counts.hasError())
      return Counts.takeError("unpack");
    if (Count > C.Limits.MaxClasses)
      return makeError(ErrorCode::LimitExceeded,
                       "unpack: class count over limit");
    // Every class costs at least five varint bytes from the Counts
    // stream (versions plus three member counts), so a count the
    // stream cannot hold is corrupt before anything is reserved.
    if (Count * 5 > Counts.remaining())
      return makeError(ErrorCode::Corrupt,
                       "unpack: class count exceeds stream size");
    return Error::success();
  }

  /// Decode side only: decodes the next class record in archive order.
  /// Valid only after beginArchive, at most Count times.
  Error transcodeOneClass(ClassRec &R) {
    static_assert(!Ctx::IsEncode,
                  "transcodeOneClass is for incremental decoding");
    if (auto E = xClassRec(R))
      return E;
    if (C.Latch)
      return std::move(C.Latch);
    return Error::success();
  }

private:
  //===--------------------------------------------------------------===//
  // Primitives: encode writes the argument and returns it; decode reads.
  //===--------------------------------------------------------------===//

  uint64_t xVarU(StreamId Sid, uint64_t V) {
    if constexpr (Ctx::IsEncode) {
      writeVarUInt(C.S.out(Sid), V);
      C.countItem(Sid);
      return V;
    } else {
      return readVarUInt(C.S.in(Sid));
    }
  }

  int64_t xVarS(StreamId Sid, int64_t V) {
    if constexpr (Ctx::IsEncode) {
      writeVarInt(C.S.out(Sid), V);
      C.countItem(Sid);
      return V;
    } else {
      return readVarInt(C.S.in(Sid));
    }
  }

  uint8_t xU1(StreamId Sid, uint8_t V) {
    if constexpr (Ctx::IsEncode) {
      C.S.out(Sid).writeU1(V);
      C.countItem(Sid);
      return V;
    } else {
      return C.S.in(Sid).readU1();
    }
  }

  uint32_t xU4(StreamId Sid, uint32_t V) {
    if constexpr (Ctx::IsEncode) {
      C.S.out(Sid).writeU4(V);
      C.countItem(Sid);
      return V;
    } else {
      return C.S.in(Sid).readU4();
    }
  }

  uint64_t xU8(StreamId Sid, uint64_t V) {
    if constexpr (Ctx::IsEncode) {
      C.S.out(Sid).writeU8(V);
      C.countItem(Sid);
      return V;
    } else {
      return C.S.in(Sid).readU8();
    }
  }

  /// A newly defined string: varint length in StringLengths, characters
  /// in \p Chars. Decode enforces the string-length resource cap.
  std::string xStringDef(const std::string &EncStr, StreamId Chars) {
    if constexpr (Ctx::IsEncode) {
      xVarU(StreamId::StringLengths, EncStr.size());
      C.S.out(Chars).writeString(EncStr);
      C.countItem(Chars);
      return std::string();
    } else {
      (void)EncStr;
      size_t Len =
          static_cast<size_t>(readVarUInt(C.S.in(StreamId::StringLengths)));
      if (Len > C.Limits.MaxStringBytes) {
        C.fail(ErrorCode::LimitExceeded, "unpack: string length over limit");
        return std::string();
      }
      return C.S.in(Chars).readString(Len);
    }
  }

  //===--------------------------------------------------------------===//
  // Reference sites with inline definitions
  //===--------------------------------------------------------------===//

  /// One string-pool reference site: coder reference in \p RefStream, a
  /// first occurrence followed by the string's definition in \p Chars.
  /// \p Count / \p Append / \p Get bind the helper to one Model pool;
  /// \p What names the pool in the out-of-range diagnostic.
  template <typename CountFn, typename AppendFn, typename GetFn>
  uint32_t xStringRef(PoolKind Pool, StreamId RefStream, StreamId Chars,
                      const char *What, uint32_t EncId, CountFn Count,
                      AppendFn Append, GetFn Get) {
    if constexpr (Ctx::IsEncode) {
      (void)Count;
      (void)Append;
      (void)What;
      bool Def = C.Enc.encodeCounted(poolId(Pool), 0, EncId,
                                     C.S.out(RefStream));
      C.countItem(RefStream);
      if (Def)
        xStringDef(Get(EncId), Chars);
      return EncId;
    } else {
      (void)Get;
      (void)EncId;
      auto Existing =
          C.Dec.decodeCounted(poolId(Pool), 0, C.S.in(RefStream));
      if (Existing) {
        if (*Existing < Count())
          return *Existing;
        C.fail(ErrorCode::Corrupt,
               std::string("unpack: ") + What + " ref out of range");
        return Append(std::string());
      }
      uint32_t Id = Append(xStringDef(std::string(), Chars));
      C.Dec.registerNew(poolId(Pool), 0, Id);
      return Id;
    }
  }

  uint32_t xPackage(uint32_t Id) {
    return xStringRef(
        PoolKind::Package, StreamId::PackageRefs, StreamId::ClassNameChars,
        "package", Id, [this] { return C.M.packageCount(); },
        [this](std::string S) { return C.M.appendPackage(std::move(S)); },
        [this](uint32_t I) -> const std::string & { return C.M.package(I); });
  }

  uint32_t xSimpleName(uint32_t Id) {
    return xStringRef(
        PoolKind::SimpleName, StreamId::SimpleNameRefs,
        StreamId::ClassNameChars, "simple-name", Id,
        [this] { return C.M.simpleNameCount(); },
        [this](std::string S) { return C.M.appendSimpleName(std::move(S)); },
        [this](uint32_t I) -> const std::string & {
          return C.M.simpleName(I);
        });
  }

  uint32_t xFieldName(uint32_t Id) {
    return xStringRef(
        PoolKind::FieldName, StreamId::FieldNameRefs, StreamId::NameChars,
        "field-name", Id, [this] { return C.M.fieldNameCount(); },
        [this](std::string S) { return C.M.appendFieldName(std::move(S)); },
        [this](uint32_t I) -> const std::string & {
          return C.M.fieldName(I);
        });
  }

  uint32_t xMethodName(uint32_t Id) {
    return xStringRef(
        PoolKind::MethodName, StreamId::MethodNameRefs, StreamId::NameChars,
        "method-name", Id, [this] { return C.M.methodNameCount(); },
        [this](std::string S) { return C.M.appendMethodName(std::move(S)); },
        [this](uint32_t I) -> const std::string & {
          return C.M.methodName(I);
        });
  }

  uint32_t xStringConst(uint32_t Id) {
    return xStringRef(
        PoolKind::StringConst, StreamId::StringConstRefs,
        StreamId::StringConstChars, "string-const", Id,
        [this] { return C.M.stringConstCount(); },
        [this](std::string S) { return C.M.appendStringConst(std::move(S)); },
        [this](uint32_t I) -> const std::string & {
          return C.M.stringConst(I);
        });
  }

  /// A class reference's definition body: dimensions and base in Counts,
  /// then (for 'L' bases) the package and simple-name references.
  void classDefBody(MClassRef &R) {
    R.Dims = static_cast<uint8_t>(xVarU(StreamId::Counts, R.Dims));
    R.Base = static_cast<char>(
        xU1(StreamId::Counts, static_cast<uint8_t>(R.Base)));
    if (R.Base == 'L') {
      R.Package = xPackage(R.Package);
      R.Simple = xSimpleName(R.Simple);
    }
  }

  uint32_t xClass(uint32_t EncId) {
    uint32_t Pool = poolId(PoolKind::ClassRefPool);
    if constexpr (Ctx::IsEncode) {
      bool Def =
          C.Enc.encodeCounted(Pool, 0, EncId, C.S.out(StreamId::ClassRefs));
      C.countItem(StreamId::ClassRefs);
      if (Def) {
        MClassRef R = C.M.classRef(EncId);
        classDefBody(R);
      }
      return EncId;
    } else {
      auto Existing = C.Dec.decodeCounted(Pool, 0, C.S.in(StreamId::ClassRefs));
      if (Existing) {
        if (*Existing < C.M.classRefCount())
          return *Existing;
        C.fail(ErrorCode::Corrupt, "unpack: class ref out of range");
        return C.poisonClass();
      }
      MClassRef R;
      classDefBody(R);
      uint32_t Id = C.M.appendClassRef(R);
      C.Dec.registerNew(Pool, 0, Id);
      return Id;
    }
  }

  /// A field reference's definition body: owner class, field name,
  /// field type.
  void fieldDefBody(MFieldRef &R) {
    R.Owner = xClass(R.Owner);
    R.Name = xFieldName(R.Name);
    R.Type = xClass(R.Type);
  }

  uint32_t xFieldRef(PoolKind Pool, uint32_t EncId) {
    Pool = effectivePool(Pool, C.Scheme);
    if constexpr (Ctx::IsEncode) {
      bool Def = C.Enc.encodeCounted(poolId(Pool), 0, EncId,
                                     C.S.out(StreamId::FieldRefs));
      C.countItem(StreamId::FieldRefs);
      if (Def) {
        MFieldRef R = C.M.fieldRef(EncId);
        fieldDefBody(R);
      }
      return EncId;
    } else {
      auto Existing =
          C.Dec.decodeCounted(poolId(Pool), 0, C.S.in(StreamId::FieldRefs));
      if (Existing) {
        if (*Existing < C.M.fieldRefCount())
          return *Existing;
        C.fail(ErrorCode::Corrupt, "unpack: field ref out of range");
        MFieldRef P;
        P.Owner = C.poisonClass();
        P.Name = C.M.appendFieldName(std::string());
        P.Type = C.poisonClass();
        return C.M.appendFieldRef(P);
      }
      MFieldRef R;
      fieldDefBody(R);
      uint32_t Id = C.M.appendFieldRef(R);
      C.Dec.registerNew(poolId(Pool), 0, Id);
      return Id;
    }
  }

  /// A method reference's definition body: owner class, method name,
  /// then the signature as a counted list of class references.
  void methodDefBody(MMethodRef &R) {
    R.Owner = xClass(R.Owner);
    R.Name = xMethodName(R.Name);
    if constexpr (Ctx::IsEncode) {
      xVarU(StreamId::Counts, R.Sig.size());
      for (uint32_t Cl : R.Sig)
        xClass(Cl);
    } else {
      size_t SigLen =
          static_cast<size_t>(xVarU(StreamId::Counts, 0));
      // A method has at most 255 parameter slots plus the return type;
      // anything larger is corrupt input. Clamp so a garbage varint
      // cannot drive an unbounded loop; a too-short signature gets a
      // void return so later lookups stay in bounds.
      if (SigLen > 257)
        SigLen = 257;
      R.Sig.reserve(SigLen);
      for (size_t K = 0; K < SigLen; ++K)
        R.Sig.push_back(xClass(0));
      if (R.Sig.empty()) {
        MClassRef Void;
        Void.Base = 'V';
        R.Sig.push_back(C.M.appendClassRef(Void));
      }
    }
  }

  uint32_t xMethodRef(PoolKind Pool, uint32_t Sub, uint32_t EncId) {
    Pool = effectivePool(Pool, C.Scheme);
    if constexpr (Ctx::IsEncode) {
      bool Def = C.Enc.encodeCounted(poolId(Pool), Sub, EncId,
                                     C.S.out(StreamId::MethodRefs));
      C.countItem(StreamId::MethodRefs);
      if (Def) {
        MMethodRef R = C.M.methodRef(EncId);
        methodDefBody(R);
      }
      return EncId;
    } else {
      auto Existing = C.Dec.decodeCounted(poolId(Pool), Sub,
                                          C.S.in(StreamId::MethodRefs));
      if (Existing) {
        if (*Existing < C.M.methodRefCount())
          return *Existing;
        C.fail(ErrorCode::Corrupt, "unpack: method ref out of range");
        MMethodRef P;
        P.Owner = C.poisonClass();
        P.Name = C.M.appendMethodName(std::string());
        P.Sig.push_back(C.poisonClass());
        return C.M.appendMethodRef(std::move(P));
      }
      MMethodRef R;
      methodDefBody(R);
      uint32_t Id = C.M.appendMethodRef(std::move(R));
      C.Dec.registerNew(poolId(Pool), Sub, Id);
      return Id;
    }
  }

  //===--------------------------------------------------------------===//
  // Structure
  //===--------------------------------------------------------------===//

  Error xClassRec(ClassRec &R) {
    R.MinorVersion =
        static_cast<uint32_t>(xVarU(StreamId::Counts, R.MinorVersion));
    R.MajorVersion =
        static_cast<uint32_t>(xVarU(StreamId::Counts, R.MajorVersion));
    R.Flags = static_cast<uint32_t>(xVarU(StreamId::Flags, R.Flags));
    R.ThisId = xClass(R.ThisId);
    // Aux0 on a class means "has a superclass"; the lowering pass set
    // the bit from the classfile, so deriving it here is an identity on
    // the encode side.
    R.HasSuper = (R.Flags & PackedFlagAux0) != 0;
    if (R.HasSuper)
      R.SuperId = xClass(R.SuperId);

    if constexpr (Ctx::IsEncode) {
      xVarU(StreamId::Counts, R.Interfaces.size());
      for (uint32_t Id : R.Interfaces)
        xClass(Id);
      xVarU(StreamId::Counts, R.Fields.size());
      for (FieldRec &F : R.Fields)
        if (auto E = xFieldRec(F))
          return E;
      xVarU(StreamId::Counts, R.Methods.size());
      for (MethodRec &Mth : R.Methods)
        if (auto E = xMethodRec(Mth, R.Flags))
          return E;
      return Error::success();
    } else {
      ByteReader &Counts = C.S.in(StreamId::Counts);
      size_t IfaceCount = static_cast<size_t>(readVarUInt(Counts));
      if (Counts.hasError() || IfaceCount > 0xFFFF)
        return makeError(ErrorCode::Corrupt, "unpack: bad class header");
      for (size_t K = 0; K < IfaceCount && !C.Latch; ++K)
        R.Interfaces.push_back(xClass(0));

      size_t FieldCount = static_cast<size_t>(readVarUInt(Counts));
      if (Counts.hasError() || FieldCount > 0xFFFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: implausible field count");
      for (size_t K = 0; K < FieldCount && !C.Latch; ++K) {
        FieldRec F;
        if (auto E = xFieldRec(F))
          return E;
        R.Fields.push_back(std::move(F));
      }
      size_t MethodCount = static_cast<size_t>(readVarUInt(Counts));
      if (Counts.hasError() || MethodCount > 0xFFFF)
        return makeError(ErrorCode::Corrupt,
                         "unpack: implausible method count");
      for (size_t K = 0; K < MethodCount && !C.Latch; ++K) {
        MethodRec Mth;
        if (auto E = xMethodRec(Mth, R.Flags))
          return E;
        R.Methods.push_back(std::move(Mth));
      }
      if (Counts.hasError())
        return Counts.takeError("unpack class body");
      return Error::success();
    }
  }

  Error xFieldRec(FieldRec &F) {
    F.Flags = static_cast<uint32_t>(xVarU(StreamId::Flags, F.Flags));
    PoolKind Pool = (F.Flags & AccStatic) ? PoolKind::FieldStatic
                                          : PoolKind::FieldInstance;
    F.RefId = xFieldRef(Pool, F.RefId);
    if (F.Flags & PackedFlagAux0) {
      // The constant's stream is routed by the field's declared type —
      // information both sides have before the value. The lowering pass
      // validated the classfile's ConstantValue tag against this type,
      // so on the encode side the switch always lands on F.Const.Kind.
      VType T = C.M.classRefVType(C.M.fieldRef(F.RefId).Type);
      switch (T) {
      case VType::Int:
        F.Const.Kind = ConstKind::Int;
        F.Const.IntValue = xVarS(StreamId::IntConsts, F.Const.IntValue);
        break;
      case VType::Float:
        F.Const.Kind = ConstKind::Float;
        F.Const.RawBits = xU4(StreamId::FloatConsts,
                              static_cast<uint32_t>(F.Const.RawBits));
        break;
      case VType::Long:
        F.Const.Kind = ConstKind::Long;
        F.Const.RawBits = xU8(StreamId::LongConsts, F.Const.RawBits);
        break;
      case VType::Double:
        F.Const.Kind = ConstKind::Double;
        F.Const.RawBits = xU8(StreamId::DoubleConsts, F.Const.RawBits);
        break;
      case VType::Ref:
        F.Const.Kind = ConstKind::String;
        F.Const.Id = xStringConst(F.Const.Id);
        break;
      default:
        return makeError(ErrorCode::Corrupt,
                         "unpack: constant on untyped field");
      }
    }
    return Error::success();
  }

  Error xMethodRec(MethodRec &R, uint32_t ClassFlags) {
    R.Flags = static_cast<uint32_t>(xVarU(StreamId::Flags, R.Flags));
    R.RefId = xMethodRef(methodDefPool(R.Flags, ClassFlags), 0, R.RefId);
    if (R.Flags & PackedFlagAux1) {
      if constexpr (Ctx::IsEncode) {
        xVarU(StreamId::Counts, R.Exceptions.size());
        for (uint32_t Id : R.Exceptions)
          xClass(Id);
      } else {
        size_t N =
            static_cast<size_t>(readVarUInt(C.S.in(StreamId::Counts)));
        if (C.S.in(StreamId::Counts).hasError() || N > 0xFFFF)
          return makeError(ErrorCode::Corrupt,
                           "unpack: bad Exceptions count");
        for (size_t K = 0; K < N && !C.Latch; ++K)
          R.Exceptions.push_back(xClass(0));
      }
    }
    if (R.Flags & PackedFlagAux0) {
      if constexpr (Ctx::IsEncode) {
        if (auto E = xCodeRec(*R.Code))
          return E;
      } else {
        CodeRec Code;
        if (auto E = xCodeRec(Code))
          return E;
        R.Code = std::move(Code);
      }
    }
    return Error::success();
  }

  //===--------------------------------------------------------------===//
  // Bytecode (§7)
  //===--------------------------------------------------------------===//

  /// One exception-table entry: pcs in BranchOffsets (end as a span so
  /// it stays small), catch flag in Counts, then the catch class.
  void xHandler(CodeRec::Handler &E) {
    E.StartPc =
        static_cast<uint32_t>(xVarU(StreamId::BranchOffsets, E.StartPc));
    uint32_t Span = static_cast<uint32_t>(
        xVarU(StreamId::BranchOffsets, E.EndPc - E.StartPc));
    if constexpr (!Ctx::IsEncode)
      E.EndPc = E.StartPc + Span;
    else
      (void)Span;
    E.HandlerPc =
        static_cast<uint32_t>(xVarU(StreamId::BranchOffsets, E.HandlerPc));
    E.HasCatch = xU1(StreamId::Counts, E.HasCatch ? 1 : 0) != 0;
    if (E.HasCatch)
      E.CatchClass = xClass(E.CatchClass);
  }

  Error xCodeRec(CodeRec &R) {
    R.MaxStack = static_cast<uint32_t>(xVarU(StreamId::Counts, R.MaxStack));
    R.MaxLocals =
        static_cast<uint32_t>(xVarU(StreamId::Counts, R.MaxLocals));
    uint64_t ExcCount = xVarU(StreamId::Counts, R.Table.size());
    uint64_t InsnCount = xVarU(StreamId::Counts, R.Insns.size());
    if constexpr (!Ctx::IsEncode) {
      ByteReader &Counts = C.S.in(StreamId::Counts);
      // A code array is capped at 65535 bytes, so instruction and
      // handler counts beyond that are corrupt.
      if (Counts.hasError() || ExcCount > 0xFFFF || InsnCount > 0xFFFF)
        return makeError(ErrorCode::Corrupt, "unpack: bad code header");
      if (InsnCount > C.Limits.MaxMethodInsns)
        return makeError(ErrorCode::LimitExceeded,
                         "unpack: method instruction count over limit");
      // Every handler costs at least one byte from the Counts stream
      // (the catch flag), so a count the stream cannot hold is corrupt.
      if (ExcCount > Counts.remaining())
        return makeError(ErrorCode::Corrupt,
                         "unpack: exception table exceeds stream size");
    }
    if constexpr (Ctx::IsEncode) {
      for (CodeRec::Handler &E : R.Table)
        xHandler(E);
    } else {
      for (uint64_t K = 0; K < ExcCount; ++K) {
        CodeRec::Handler E;
        xHandler(E);
        R.Table.push_back(E);
      }
    }

    // Both directions drive the same approximate stack machine past the
    // same instruction sequence, so collapsed opcodes resolve
    // identically (§7.1).
    FlowState State;
    State.startMethod();
    for (const CodeRec::Handler &E : R.Table)
      State.seedHandler(E.HandlerPc);

    if constexpr (Ctx::IsEncode) {
      for (size_t K = 0; K < R.Insns.size(); ++K) {
        Insn &I = R.Insns[K];
        CodeOperand &Operand = R.Operands[K];
        // Merge the states recorded on forward edges into this offset
        // before the opcode is chosen — the decoder does the same
        // before resolving it.
        State.enterInsn(I.Offset);
        if (auto E = xInsn(I, Operand, I.Offset, State))
          return E;
        InsnTypes Types = insnTypesFor(C.M, I, Operand);
        traceInsn(I, State);
        State.apply(I, &Types);
      }
    } else {
      uint32_t Offset = 0;
      R.Insns.reserve(static_cast<size_t>(InsnCount));
      R.Operands.reserve(static_cast<size_t>(InsnCount));
      for (uint64_t K = 0; K < InsnCount; ++K) {
        if (C.Latch)
          return std::move(C.Latch);
        // Same pre-opcode merge as the encoder: forward-edge states
        // land before the pseudo-opcode at this offset is resolved.
        State.enterInsn(Offset);
        Insn I;
        CodeOperand Operand;
        if (auto E = xInsn(I, Operand, Offset, State))
          return E;
        I.Offset = Offset;
        I.Length = encodedLength(I, Offset);
        Offset += I.Length;
        InsnTypes Types = insnTypesFor(C.M, I, Operand);
        traceInsn(I, State);
        State.apply(I, &Types);
        R.Insns.push_back(std::move(I));
        R.Operands.push_back(Operand);
      }
    }
    return Error::success();
  }

  /// Debug aid: CJPACK_TRACE=1 dumps the per-instruction stack state on
  /// both sides so encoder/decoder divergence is diffable.
  void traceInsn(const Insn &I, const FlowState &State) {
    static const bool Trace = getenv("CJPACK_TRACE") != nullptr;
    if (Trace)
      fprintf(stderr, "%c %u %s known=%d top=%d ctx=%u\n",
              Ctx::IsEncode ? 'E' : 'D', I.Offset,
              opInfo(I.Opcode).Mnemonic, State.isKnown(),
              static_cast<int>(State.top()), State.contextId());
  }

  /// Encode only: the wire code point for \p I given the current stack
  /// state — a typed ldc pseudo-opcode, a collapsed family
  /// pseudo-opcode when prediction succeeds, or the opcode itself.
  uint8_t wireOpcode(const Insn &I, const CodeOperand &Operand,
                     const FlowState &State) {
    if (I.Opcode == Op::Ldc || I.Opcode == Op::LdcW) {
      bool Short = I.Opcode == Op::Ldc;
      switch (Operand.Kind) {
      case ConstKind::Int:
        return Short ? PseudoLdcInt : PseudoLdcWInt;
      case ConstKind::Float:
        return Short ? PseudoLdcFloat : PseudoLdcWFloat;
      case ConstKind::String:
        return Short ? PseudoLdcString : PseudoLdcWString;
      default:
        assert(false && "bad ldc constant kind");
        return PseudoLdcInt;
      }
    }
    if (I.Opcode == Op::Ldc2W)
      return Operand.Kind == ConstKind::Long ? PseudoLdc2Long
                                             : PseudoLdc2Double;
    if (C.Collapse && !I.IsWide) {
      OpFamily F = familyOf(I.Opcode);
      if (F != OpFamily::None) {
        auto Predicted = variantFor(F, State.top(familyKeyDepth(F)));
        if (Predicted && *Predicted == I.Opcode)
          return pseudoOfFamily(F);
      }
    }
    return static_cast<uint8_t>(I.Opcode);
  }

  /// Decode only: reads the wire code point and resolves pseudo-opcodes
  /// (typed ldc and collapsed families) back to the real opcode.
  Error decodeOpcode(Insn &I, CodeOperand &Operand, FlowState &State) {
    ByteReader &Ops = C.S.in(StreamId::Opcodes);
    uint8_t Code = Ops.readU1();
    if (Code == static_cast<uint8_t>(Op::Wide)) {
      I.IsWide = true;
      Code = Ops.readU1();
    }
    if (Ops.hasError())
      return makeError(ErrorCode::Truncated,
                       "unpack: truncated opcode stream");

    bool LdcShort = false;
    switch (Code) {
    case PseudoLdcInt:
    case PseudoLdcWInt:
      Operand.Kind = ConstKind::Int;
      LdcShort = Code == PseudoLdcInt;
      I.Opcode = LdcShort ? Op::Ldc : Op::LdcW;
      break;
    case PseudoLdcFloat:
    case PseudoLdcWFloat:
      Operand.Kind = ConstKind::Float;
      LdcShort = Code == PseudoLdcFloat;
      I.Opcode = LdcShort ? Op::Ldc : Op::LdcW;
      break;
    case PseudoLdcString:
    case PseudoLdcWString:
      Operand.Kind = ConstKind::String;
      LdcShort = Code == PseudoLdcString;
      I.Opcode = LdcShort ? Op::Ldc : Op::LdcW;
      break;
    case PseudoLdc2Long:
      Operand.Kind = ConstKind::Long;
      I.Opcode = Op::Ldc2W;
      break;
    case PseudoLdc2Double:
      Operand.Kind = ConstKind::Double;
      I.Opcode = Op::Ldc2W;
      break;
    default:
      if (isFamilyPseudo(Code)) {
        OpFamily F = familyOfPseudo(Code);
        auto Variant = variantFor(F, State.top(familyKeyDepth(F)));
        if (!Variant)
          return makeError(ErrorCode::Corrupt,
                           "unpack: collapsed opcode with unknown stack "
                           "state");
        I.Opcode = *Variant;
      } else if (isValidOpcode(Code)) {
        I.Opcode = static_cast<Op>(Code);
      } else {
        return makeError(ErrorCode::Corrupt,
                         "unpack: undefined wire opcode " +
                             std::to_string(Code));
      }
      break;
    }
    return Error::success();
  }

  /// One instruction. Encode consumes a fully-populated (I, Operand)
  /// pair; decode fills one in (the caller assigns Offset/Length).
  Error xInsn(Insn &I, CodeOperand &Operand, uint32_t Offset,
              FlowState &State) {
    if constexpr (Ctx::IsEncode) {
      ByteWriter &Ops = C.S.out(StreamId::Opcodes);
      if (I.IsWide) {
        Ops.writeU1(static_cast<uint8_t>(Op::Wide));
        C.countItem(StreamId::Opcodes);
      }
      Ops.writeU1(wireOpcode(I, Operand, State));
      C.countItem(StreamId::Opcodes);
    } else {
      if (auto E = decodeOpcode(I, Operand, State))
        return E;
    }

    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
    case OpFormat::S2:
    case OpFormat::NewArrayType:
      I.Const = static_cast<int32_t>(xVarS(StreamId::IntConsts, I.Const));
      break;
    case OpFormat::LocalU1:
      I.LocalIndex =
          static_cast<uint32_t>(xVarU(StreamId::Registers, I.LocalIndex));
      break;
    case OpFormat::Iinc:
      I.LocalIndex =
          static_cast<uint32_t>(xVarU(StreamId::Registers, I.LocalIndex));
      I.Const = static_cast<int32_t>(xVarS(StreamId::IntConsts, I.Const));
      break;
    case OpFormat::CpU1:
    case OpFormat::CpU2:
    case OpFormat::InvokeInterface:
      if (auto E = xCpOperand(I, Operand, State))
        return E;
      break;
    case OpFormat::Branch2:
    case OpFormat::Branch4: {
      // Branches travel as offsets relative to the instruction. Decode
      // computes the target in 64 bits and requires it to land in a
      // legal code array ([0, 65535]); a hostile offset would otherwise
      // overflow the 32-bit addition.
      int64_t T = static_cast<int64_t>(Offset) +
                  xVarS(StreamId::BranchOffsets,
                        static_cast<int64_t>(I.BranchTarget) -
                            static_cast<int32_t>(Offset));
      if constexpr (!Ctx::IsEncode) {
        if (T < 0 || T > 0xFFFF)
          return makeError(ErrorCode::Corrupt,
                           "unpack: branch target out of range");
        I.BranchTarget = static_cast<int32_t>(T);
      } else {
        (void)T;
      }
      break;
    }
    case OpFormat::MultiANewArray:
      Operand.Kind = ConstKind::ClassTarget;
      Operand.Id = xClass(Operand.Id);
      I.Const = static_cast<int32_t>(
          xVarU(StreamId::Counts, static_cast<uint32_t>(I.Const)));
      break;
    case OpFormat::TableSwitch: {
      I.SwitchLow =
          static_cast<int32_t>(xVarS(StreamId::IntConsts, I.SwitchLow));
      I.SwitchHigh =
          static_cast<int32_t>(xVarS(StreamId::IntConsts, I.SwitchHigh));
      if constexpr (Ctx::IsEncode) {
        xVarS(StreamId::BranchOffsets,
              static_cast<int64_t>(I.SwitchDefault) -
                  static_cast<int32_t>(Offset));
        for (int32_t T : I.SwitchTargets)
          xVarS(StreamId::BranchOffsets,
                static_cast<int64_t>(T) - static_cast<int32_t>(Offset));
      } else {
        if (I.SwitchHigh < I.SwitchLow ||
            static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow >= (1 << 24))
          return makeError(ErrorCode::Corrupt,
                           "unpack: malformed tableswitch bounds");
        ByteReader &B = C.S.in(StreamId::BranchOffsets);
        int64_t N = static_cast<int64_t>(I.SwitchHigh) - I.SwitchLow + 1;
        // Every target costs at least one varint byte; a claimed count
        // the stream cannot hold is corrupt before the vector grows.
        if (N > static_cast<int64_t>(B.remaining()))
          return makeError(ErrorCode::Corrupt,
                           "unpack: tableswitch exceeds stream size");
        int64_t Def = static_cast<int64_t>(Offset) + readVarInt(B);
        if (Def < 0 || Def > 0xFFFF)
          return makeError(ErrorCode::Corrupt,
                           "unpack: switch default target out of range");
        I.SwitchDefault = static_cast<int32_t>(Def);
        I.SwitchTargets.reserve(static_cast<size_t>(N));
        for (int64_t K = 0; K < N; ++K) {
          int64_t T = static_cast<int64_t>(Offset) + readVarInt(B);
          if (!B.hasError() && (T < 0 || T > 0xFFFF))
            return makeError(ErrorCode::Corrupt,
                             "unpack: switch target out of range");
          I.SwitchTargets.push_back(static_cast<int32_t>(T));
        }
      }
      break;
    }
    case OpFormat::LookupSwitch: {
      uint64_t N = xVarU(StreamId::Counts, I.SwitchMatches.size());
      if constexpr (Ctx::IsEncode) {
        (void)N;
        xVarS(StreamId::BranchOffsets,
              static_cast<int64_t>(I.SwitchDefault) -
                  static_cast<int32_t>(Offset));
        for (size_t K = 0; K < I.SwitchMatches.size(); ++K) {
          xVarS(StreamId::IntConsts, I.SwitchMatches[K]);
          xVarS(StreamId::BranchOffsets,
                static_cast<int64_t>(I.SwitchTargets[K]) -
                    static_cast<int32_t>(Offset));
        }
      } else {
        ByteReader &B = C.S.in(StreamId::BranchOffsets);
        if (N >= (1u << 24) || N > B.remaining())
          return makeError(ErrorCode::Corrupt,
                           "unpack: malformed lookupswitch count");
        int64_t Def = static_cast<int64_t>(Offset) + readVarInt(B);
        if (Def < 0 || Def > 0xFFFF)
          return makeError(ErrorCode::Corrupt,
                           "unpack: switch default target out of range");
        I.SwitchDefault = static_cast<int32_t>(Def);
        I.SwitchMatches.reserve(static_cast<size_t>(N));
        I.SwitchTargets.reserve(static_cast<size_t>(N));
        for (uint64_t K = 0; K < N; ++K) {
          I.SwitchMatches.push_back(static_cast<int32_t>(
              readVarInt(C.S.in(StreamId::IntConsts))));
          int64_t T = static_cast<int64_t>(Offset) + readVarInt(B);
          if (!B.hasError() && (T < 0 || T > 0xFFFF))
            return makeError(ErrorCode::Corrupt,
                             "unpack: switch target out of range");
          I.SwitchTargets.push_back(static_cast<int32_t>(T));
        }
      }
      break;
    }
    case OpFormat::InvokeDynamic:
      if constexpr (Ctx::IsEncode)
        return makeError("pack: invokedynamic is not supported (post-1999)");
      else
        return makeError(ErrorCode::Corrupt,
                         "unpack: unexpected opcode format");
    case OpFormat::Wide:
      if constexpr (Ctx::IsEncode)
        return makeError("pack: unexpected wide format");
      else
        return makeError(ErrorCode::Corrupt,
                         "unpack: unexpected opcode format");
    }

    if constexpr (!Ctx::IsEncode) {
      // The count operand of invokeinterface never travels: it is a
      // function of the signature.
      if (I.Opcode == Op::InvokeInterface)
        I.InvokeCount = static_cast<uint8_t>(
            invokeInterfaceCount(C.M, C.M.methodRef(Operand.Id).Sig));
    }
    return Error::success();
  }

  /// The constant-pool operand of one cp instruction, dispatched on the
  /// opcode's reference kind — information both sides have before the
  /// operand (for ldc, the typed pseudo-opcode already fixed
  /// Operand.Kind).
  Error xCpOperand(Insn &I, CodeOperand &Operand, FlowState &State) {
    switch (cpRefKind(I.Opcode)) {
    case CpRefKind::LoadConst:
    case CpRefKind::LoadConst2:
      switch (Operand.Kind) {
      case ConstKind::Int:
        Operand.IntValue = xVarS(StreamId::IntConsts, Operand.IntValue);
        break;
      case ConstKind::Float:
        Operand.RawBits = xU4(StreamId::FloatConsts,
                              static_cast<uint32_t>(Operand.RawBits));
        break;
      case ConstKind::Long:
        Operand.RawBits = xU8(StreamId::LongConsts, Operand.RawBits);
        break;
      case ConstKind::Double:
        Operand.RawBits = xU8(StreamId::DoubleConsts, Operand.RawBits);
        break;
      case ConstKind::String:
        Operand.Id = xStringConst(Operand.Id);
        break;
      default:
        if constexpr (Ctx::IsEncode)
          return makeError("pack: cp opcode without operand record");
        else
          return makeError(ErrorCode::Corrupt,
                           "unpack: ldc pseudo-op without constant kind");
      }
      return Error::success();
    case CpRefKind::ClassRef:
      Operand.Kind = ConstKind::ClassTarget;
      Operand.Id = xClass(Operand.Id);
      return Error::success();
    case CpRefKind::FieldInstance:
    case CpRefKind::FieldStatic:
      Operand.Kind = ConstKind::Field;
      Operand.Id = xFieldRef(fieldPoolFor(I.Opcode), Operand.Id);
      return Error::success();
    case CpRefKind::MethodVirtual:
    case CpRefKind::MethodSpecial:
    case CpRefKind::MethodStatic:
    case CpRefKind::MethodInterface:
      Operand.Kind = ConstKind::Method;
      Operand.Id =
          xMethodRef(methodPoolFor(I.Opcode), State.contextId(), Operand.Id);
      return Error::success();
    case CpRefKind::None:
      if constexpr (Ctx::IsEncode)
        return makeError("pack: cp opcode without operand record");
      else
        return makeError(ErrorCode::Corrupt,
                         "unpack: cp operand on non-cp opcode");
    }
    return Error::success();
  }

  Ctx &C;
};

} // namespace cjpack

#endif // CJPACK_PACK_TRANSCODE_H
