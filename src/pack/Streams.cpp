//===- Streams.cpp - separated wire streams (§4, §7) ----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pack/Streams.h"
#include "support/VarInt.h"

using namespace cjpack;

namespace {

/// Runs the final compression stage for one stream: try the planned
/// backend, keep the result only when strictly smaller than raw (the
/// historical zlib rule, now per backend), else store. Returns the
/// wire method byte; \p Stored receives the bytes to write.
uint8_t packStream(BackendId Plan, const std::vector<uint8_t> &Raw,
                   std::vector<uint8_t> &Stored) {
  if (Plan != BackendId::Store && !Raw.empty()) {
    Stored = allBackends()[static_cast<uint8_t>(Plan)].Compress(Raw);
    if (Stored.size() < Raw.size())
      return static_cast<uint8_t>(Plan);
    Stored.clear();
  }
  return static_cast<uint8_t>(BackendId::Store);
}

/// Decodes one stream's stored bytes via its wire method byte. The
/// declared \p RawLen caps the backend's output (empty-declared
/// streams get a one-byte cap so a lying header cannot expand
/// unbounded), and the result must match it exactly — a wrong method
/// byte shows up here as a size mismatch when the blob even parses.
Expected<std::vector<uint8_t>>
unpackStream(uint8_t Method, std::span<const uint8_t> Stored, size_t RawLen,
             DecodeBudget *Budget) {
  if (Method == static_cast<uint8_t>(BackendId::Store)) {
    if (Stored.size() != RawLen)
      return makeError(ErrorCode::Corrupt, "streams: stored size mismatch");
    return std::vector<uint8_t>(Stored.begin(), Stored.end());
  }
  const CompressionBackend *Backend = findBackend(Method);
  if (!Backend)
    return makeError(ErrorCode::Corrupt,
                     "streams: unknown compression backend");
  if (Budget)
    if (auto E = Budget->chargeInflate(RawLen, "streams"))
      return E;
  auto Raw = Backend->Decompress(Stored, RawLen);
  if (!Raw)
    return Raw.takeError();
  if (Raw->size() != RawLen)
    return makeError(ErrorCode::Corrupt, "streams: stream size mismatch");
  return Raw;
}

} // namespace

size_t StreamSizes::totalRaw() const {
  size_t Total = 0;
  for (size_t S : Raw)
    Total += S;
  return Total;
}

size_t StreamSizes::totalPacked() const {
  size_t Total = 0;
  for (size_t S : Packed)
    Total += S;
  return Total;
}

size_t StreamSizes::packedOf(StreamCategory C) const {
  size_t Total = 0;
  for (unsigned I = 0; I < NumStreams; ++I)
    if (streamCategory(static_cast<StreamId>(I)) == C)
      Total += Packed[I];
  return Total;
}

uint64_t StreamSizes::totalItems() const {
  uint64_t Total = 0;
  for (uint64_t N : Items)
    Total += N;
  return Total;
}

void StreamSizes::add(const StreamSizes &Other) {
  for (unsigned I = 0; I < NumStreams; ++I) {
    Raw[I] += Other.Raw[I];
    Packed[I] += Other.Packed[I];
    Items[I] += Other.Items[I];
  }
}

void StreamSet::adopt(StreamId Id, std::vector<uint8_t> Bytes) {
  unsigned I = static_cast<unsigned>(Id);
  Buffers[I] = std::move(Bytes);
  Readers[I] = std::make_unique<ByteReader>(Buffers[I]);
}

std::vector<uint8_t>
cjpack::serializeShardedStreams(const std::vector<StreamSet> &Shards,
                                const BackendPlan &Plan, StreamSizes *Sizes) {
  ByteWriter W;
  writeVarUInt(W, Shards.size());
  for (unsigned I = 0; I < NumStreams; ++I) {
    StreamId Id = static_cast<StreamId>(I);
    std::vector<uint8_t> Joined;
    for (const StreamSet &S : Shards) {
      const std::vector<uint8_t> &Raw = S.raw(Id);
      Joined.insert(Joined.end(), Raw.begin(), Raw.end());
    }
    size_t RawTotal = Joined.size();
    std::vector<uint8_t> Stored;
    uint8_t Method = packStream(Plan.Stream[I], Joined, Stored);
    if (Method == 0)
      Stored = std::move(Joined);
    size_t HeaderStart = W.size();
    W.writeU1(static_cast<uint8_t>(I));
    W.writeU1(Method);
    for (const StreamSet &S : Shards)
      writeVarUInt(W, S.raw(Id).size());
    writeVarUInt(W, Stored.size());
    size_t HeaderLen = W.size() - HeaderStart;
    W.writeBytes(Stored);
    if (Sizes) {
      Sizes->Raw[I] = RawTotal;
      Sizes->Packed[I] = HeaderLen + Stored.size();
    }
  }
  return W.take();
}

Expected<std::vector<StreamSet>>
cjpack::deserializeShardedStreams(ByteReader &R, const DecodeLimits &Limits) {
  uint64_t Count = readVarUInt(R);
  if (R.hasError() || Count == 0 || Count > MaxShards)
    return makeError(ErrorCode::Corrupt,
                     "streams: implausible shard count at byte " +
                         std::to_string(R.position()));
  std::vector<StreamSet> Shards(static_cast<size_t>(Count));
  for (unsigned I = 0; I < NumStreams; ++I) {
    uint8_t Id = R.readU1();
    uint8_t Method = R.readU1();
    if (R.hasError() || Id != I)
      return makeError(ErrorCode::Corrupt,
                       "streams: corrupt stream header at byte " +
                           std::to_string(R.position()));
    std::vector<size_t> Lens(Shards.size());
    uint64_t RawTotal = 0;
    for (size_t K = 0; K < Shards.size(); ++K) {
      uint64_t Len = readVarUInt(R);
      if (R.hasError() || Len > Limits.MaxStreamBytes)
        return makeError(ErrorCode::LimitExceeded,
                         "streams: shard stream length over limit at byte " +
                             std::to_string(R.position()));
      Lens[K] = static_cast<size_t>(Len);
      RawTotal += Len;
    }
    size_t StoredLen = static_cast<size_t>(readVarUInt(R));
    if (R.hasError() || RawTotal > Limits.MaxStreamBytes)
      return makeError(ErrorCode::LimitExceeded,
                       "streams: joint stream length over limit at byte " +
                           std::to_string(R.position()));
    std::span<const uint8_t> Stored = R.readSpan(StoredLen);
    if (R.hasError())
      return R.takeError("streams");
    auto Joined = unpackStream(Method, Stored,
                               static_cast<size_t>(RawTotal), nullptr);
    if (!Joined)
      return Joined.takeError();
    size_t Offset = 0;
    for (size_t K = 0; K < Shards.size(); ++K) {
      const uint8_t *Slice = Joined->data() + Offset;
      Shards[K].adopt(static_cast<StreamId>(I),
                      std::vector<uint8_t>(Slice, Slice + Lens[K]));
      Offset += Lens[K];
    }
  }
  return Shards;
}

std::vector<uint8_t> StreamSet::serialize(const BackendPlan &Plan,
                                          StreamSizes *Sizes) const {
  ByteWriter W;
  for (unsigned I = 0; I < NumStreams; ++I) {
    const std::vector<uint8_t> &Raw = Writers[I].data();
    std::vector<uint8_t> Stored;
    uint8_t Method = packStream(Plan.Stream[I], Raw, Stored);
    if (Method == 0)
      Stored = Raw;
    size_t HeaderStart = W.size();
    W.writeU1(static_cast<uint8_t>(I));
    W.writeU1(Method);
    writeVarUInt(W, Raw.size());
    writeVarUInt(W, Stored.size());
    size_t HeaderLen = W.size() - HeaderStart;
    W.writeBytes(Stored);
    if (Sizes) {
      Sizes->Raw[I] = Raw.size();
      // Charge each stream its directory header too, so per-category
      // sums add up to the archive size.
      Sizes->Packed[I] = HeaderLen + Stored.size();
    }
  }
  return W.take();
}

Error StreamSet::deserialize(ByteReader &R, const DecodeLimits &Limits,
                             DecodeBudget *Budget) {
  for (unsigned I = 0; I < NumStreams; ++I) {
    uint8_t Id = R.readU1();
    uint8_t Method = R.readU1();
    uint64_t RawLen64 = readVarUInt(R);
    size_t StoredLen = static_cast<size_t>(readVarUInt(R));
    // Streams are written in id order; accepting any in-range id would
    // let a corrupt header leave another stream's reader unpopulated.
    if (R.hasError() || Id != I)
      return makeError(ErrorCode::Corrupt,
                       "streams: corrupt stream header at byte " +
                           std::to_string(R.position()));
    // Validate before inflate: the declared raw length drives the
    // output allocation, so an absurd value must fail here, not OOM.
    if (RawLen64 > Limits.MaxStreamBytes)
      return makeError(ErrorCode::LimitExceeded,
                       "streams: stream length over limit at byte " +
                           std::to_string(R.position()));
    size_t RawLen = static_cast<size_t>(RawLen64);
    std::span<const uint8_t> Stored = R.readSpan(StoredLen);
    if (R.hasError())
      return R.takeError("streams");
    auto Raw = unpackStream(Method, Stored, RawLen, Budget);
    if (!Raw)
      return Raw.takeError();
    Buffers[Id] = std::move(*Raw);
    Readers[Id] = std::make_unique<ByteReader>(Buffers[Id]);
  }
  return Error::success();
}
