//===- Encoder.cpp - packed archive encoder -------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Packing runs the same preorder traversal of the restructured model
// twice: a counting pass that gathers the reference statistics the
// transient/frequency schemes need, then the emitting pass. Both passes
// share the Model (interning is idempotent) so object ids are stable.
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowState.h"
#include "bytecode/Instruction.h"
#include "classfile/Transform.h"
#include "pack/ClassOrder.h"
#include "pack/CodeCommon.h"
#include "pack/Dictionary.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include "classfile/Reader.h"
#include "support/ThreadPool.h"
#include "support/VarInt.h"
#include <algorithm>
#include <set>

using namespace cjpack;

namespace {

/// RefEncoder that only counts (pass one). Writes nothing.
class CountingRefEncoder final : public RefEncoder {
public:
  explicit CountingRefEncoder(RefStats &Stats) : Stats(Stats) {}

  bool encode(uint32_t Pool, uint32_t, uint32_t Object,
              ByteWriter &) override {
    Stats.note(Pool, Object);
    return Seen[Pool].insert(Object).second;
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    Seen[Pool].insert(Object);
    return true;
  }

private:
  RefStats &Stats;
  std::map<uint32_t, std::set<uint32_t>> Seen;
};

/// One traversal of the archive, writing refs through \p Enc and
/// primitives into \p S.
class ArchiveWriter {
public:
  ArchiveWriter(Model &M, RefEncoder &Enc, StreamSet &S,
                const PackOptions &Options)
      : M(M), Enc(Enc), S(S), Options(Options) {}

  Error encodeArchive(const std::vector<const ClassFile *> &Classes) {
    writeVarUInt(S.out(StreamId::Counts), Classes.size());
    for (const ClassFile *CF : Classes)
      if (auto E = encodeClass(*CF))
        return E;
    return Error::success();
  }

private:
  //===--------------------------------------------------------------===//
  // Reference emission with inline definitions
  //===--------------------------------------------------------------===//

  void emitString(const std::string &Str, StreamId Chars) {
    writeVarUInt(S.out(StreamId::StringLengths), Str.size());
    S.out(Chars).writeString(Str);
  }

  void refPackage(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::Package), 0, Id,
                   S.out(StreamId::PackageRefs)))
      emitString(M.package(Id), StreamId::ClassNameChars);
  }

  void refSimpleName(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::SimpleName), 0, Id,
                   S.out(StreamId::SimpleNameRefs)))
      emitString(M.simpleName(Id), StreamId::ClassNameChars);
  }

  void refFieldName(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::FieldName), 0, Id,
                   S.out(StreamId::FieldNameRefs)))
      emitString(M.fieldName(Id), StreamId::NameChars);
  }

  void refMethodName(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::MethodName), 0, Id,
                   S.out(StreamId::MethodNameRefs)))
      emitString(M.methodName(Id), StreamId::NameChars);
  }

  void refStringConst(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::StringConst), 0, Id,
                   S.out(StreamId::StringConstRefs)))
      emitString(M.stringConst(Id), StreamId::StringConstChars);
  }

  void refClass(uint32_t Id) {
    if (!Enc.encode(poolId(PoolKind::ClassRefPool), 0, Id,
                    S.out(StreamId::ClassRefs)))
      return;
    const MClassRef &R = M.classRef(Id);
    writeVarUInt(S.out(StreamId::Counts), R.Dims);
    S.out(StreamId::Counts).writeU1(static_cast<uint8_t>(R.Base));
    if (R.Base == 'L') {
      refPackage(R.Package);
      refSimpleName(R.Simple);
    }
  }

  void refFieldRef(PoolKind Pool, uint32_t Id) {
    Pool = effectivePool(Pool, Options.Scheme);
    if (!Enc.encode(poolId(Pool), 0, Id, S.out(StreamId::FieldRefs)))
      return;
    const MFieldRef &R = M.fieldRef(Id);
    refClass(R.Owner);
    refFieldName(R.Name);
    refClass(R.Type);
  }

  void refMethodRef(PoolKind Pool, uint32_t Sub, uint32_t Id) {
    Pool = effectivePool(Pool, Options.Scheme);
    if (!Enc.encode(poolId(Pool), Sub, Id, S.out(StreamId::MethodRefs)))
      return;
    const MMethodRef &R = M.methodRef(Id);
    refClass(R.Owner);
    refMethodName(R.Name);
    writeVarUInt(S.out(StreamId::Counts), R.Sig.size());
    for (uint32_t C : R.Sig)
      refClass(C);
  }

  //===--------------------------------------------------------------===//
  // Structure
  //===--------------------------------------------------------------===//

  /// The pool a method definition's reference is encoded in, derived
  /// from information the decoder has before reading the reference.
  static PoolKind methodDefPool(uint32_t MethodFlags,
                                uint32_t ClassFlags) {
    if (ClassFlags & AccInterface)
      return PoolKind::MethodInterface;
    if (MethodFlags & AccStatic)
      return PoolKind::MethodStatic;
    if (MethodFlags & AccPrivate)
      return PoolKind::MethodSpecial;
    return PoolKind::MethodVirtual;
  }

  static uint32_t packedMemberFlags(const MemberInfo &MI) {
    uint32_t Flags = MI.AccessFlags;
    if (findAttribute(MI.Attributes, "Synthetic"))
      Flags |= PackedFlagSynthetic;
    if (findAttribute(MI.Attributes, "Deprecated"))
      Flags |= PackedFlagDeprecated;
    return Flags;
  }

  Error encodeClass(const ClassFile &CF) {
    ByteWriter &Counts = S.out(StreamId::Counts);
    ByteWriter &Flags = S.out(StreamId::Flags);

    writeVarUInt(Counts, CF.MinorVersion);
    writeVarUInt(Counts, CF.MajorVersion);

    uint32_t ClassFlags = CF.AccessFlags;
    if (CF.SuperClass != 0)
      ClassFlags |= PackedFlagAux0;
    if (findAttribute(CF.Attributes, "Synthetic"))
      ClassFlags |= PackedFlagSynthetic;
    if (findAttribute(CF.Attributes, "Deprecated"))
      ClassFlags |= PackedFlagDeprecated;
    writeVarUInt(Flags, ClassFlags);

    auto This = M.internClassByInternalName(CF.thisClassName());
    if (!This)
      return This.takeError();
    refClass(*This);
    if (CF.SuperClass != 0) {
      auto Super = M.internClassByInternalName(CF.superClassName());
      if (!Super)
        return Super.takeError();
      refClass(*Super);
    }
    writeVarUInt(Counts, CF.Interfaces.size());
    for (uint16_t Iface : CF.Interfaces) {
      auto Id = M.internClassByInternalName(CF.CP.className(Iface));
      if (!Id)
        return Id.takeError();
      refClass(*Id);
    }

    writeVarUInt(Counts, CF.Fields.size());
    for (const MemberInfo &F : CF.Fields)
      if (auto E = encodeField(CF, *This, F))
        return E;

    writeVarUInt(Counts, CF.Methods.size());
    for (const MemberInfo &Mth : CF.Methods)
      if (auto E = encodeMethod(CF, *This, Mth))
        return E;
    return Error::success();
  }

  Error encodeField(const ClassFile &CF, uint32_t ThisId,
                    const MemberInfo &F) {
    const AttributeInfo *Const =
        findAttribute(F.Attributes, "ConstantValue");
    uint32_t Flags = packedMemberFlags(F);
    if (Const)
      Flags |= PackedFlagAux0;
    writeVarUInt(S.out(StreamId::Flags), Flags);

    auto Type = parseFieldDescriptor(CF.CP.utf8(F.DescriptorIndex));
    if (!Type)
      return Type.takeError();
    MFieldRef Ref;
    Ref.Owner = ThisId;
    Ref.Name = M.internFieldName(CF.CP.utf8(F.NameIndex));
    Ref.Type = M.internTypeDesc(*Type);
    uint32_t Id = M.internFieldRef(Ref);
    PoolKind Pool = (F.AccessFlags & AccStatic) ? PoolKind::FieldStatic
                                                : PoolKind::FieldInstance;
    refFieldRef(Pool, Id);

    if (Const) {
      if (Const->Bytes.size() != 2)
        return makeError("pack: malformed ConstantValue");
      ByteReader CR(Const->Bytes);
      uint16_t CpIdx = CR.readU2();
      if (!CF.CP.isValidIndex(CpIdx))
        return makeError("pack: dangling ConstantValue index");
      const CpEntry &E = CF.CP.entry(CpIdx);
      VType FieldType = M.classRefVType(Ref.Type);
      switch (E.Tag) {
      case CpTag::Integer:
        if (FieldType != VType::Int)
          return makeError("pack: ConstantValue type mismatch");
        writeVarInt(S.out(StreamId::IntConsts),
                    static_cast<int32_t>(E.Bits));
        break;
      case CpTag::Float:
        if (FieldType != VType::Float)
          return makeError("pack: ConstantValue type mismatch");
        S.out(StreamId::FloatConsts).writeU4(static_cast<uint32_t>(E.Bits));
        break;
      case CpTag::Long:
        if (FieldType != VType::Long)
          return makeError("pack: ConstantValue type mismatch");
        S.out(StreamId::LongConsts).writeU8(E.Bits);
        break;
      case CpTag::Double:
        if (FieldType != VType::Double)
          return makeError("pack: ConstantValue type mismatch");
        S.out(StreamId::DoubleConsts).writeU8(E.Bits);
        break;
      case CpTag::String: {
        if (FieldType != VType::Ref)
          return makeError("pack: ConstantValue type mismatch");
        uint32_t SId = M.internStringConst(CF.CP.utf8(E.Ref1));
        refStringConst(SId);
        break;
      }
      default:
        return makeError("pack: unsupported ConstantValue tag");
      }
    }
    return Error::success();
  }

  Error encodeMethod(const ClassFile &CF, uint32_t ThisId,
                     const MemberInfo &Mth) {
    const AttributeInfo *Code = findAttribute(Mth.Attributes, "Code");
    const AttributeInfo *Exceptions =
        findAttribute(Mth.Attributes, "Exceptions");
    uint32_t Flags = packedMemberFlags(Mth);
    if (Code)
      Flags |= PackedFlagAux0;
    if (Exceptions)
      Flags |= PackedFlagAux1;
    writeVarUInt(S.out(StreamId::Flags), Flags);

    MMethodRef Ref;
    Ref.Owner = ThisId;
    Ref.Name = M.internMethodName(CF.CP.utf8(Mth.NameIndex));
    auto Sig = M.internSignature(CF.CP.utf8(Mth.DescriptorIndex));
    if (!Sig)
      return Sig.takeError();
    Ref.Sig = std::move(*Sig);
    uint32_t Id = M.internMethodRef(Ref);
    refMethodRef(methodDefPool(Mth.AccessFlags, CF.AccessFlags), 0, Id);

    if (Exceptions) {
      ByteReader ER(Exceptions->Bytes);
      uint16_t N = ER.readU2();
      writeVarUInt(S.out(StreamId::Counts), N);
      for (uint16_t K = 0; K < N; ++K) {
        uint16_t CpIdx = ER.readU2();
        if (ER.hasError() || !CF.CP.isValidIndex(CpIdx))
          return makeError("pack: malformed Exceptions attribute");
        auto CId = M.internClassByInternalName(CF.CP.className(CpIdx));
        if (!CId)
          return CId.takeError();
        refClass(*CId);
      }
    }

    if (Code)
      return encodeCode(CF, *Code);
    return Error::success();
  }

  //===--------------------------------------------------------------===//
  // Bytecode (§7)
  //===--------------------------------------------------------------===//

  Expected<CodeOperand> makeOperand(const ClassFile &CF, const Insn &I) {
    CodeOperand Out;
    switch (cpRefKind(I.Opcode)) {
    case CpRefKind::None:
      return Out;
    case CpRefKind::LoadConst:
    case CpRefKind::LoadConst2: {
      if (!CF.CP.isValidIndex(I.CpIndex))
        return Error::failure("pack: dangling ldc operand");
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      switch (E.Tag) {
      case CpTag::Integer:
        Out.Kind = ConstKind::Int;
        Out.IntValue = static_cast<int32_t>(E.Bits);
        return Out;
      case CpTag::Float:
        Out.Kind = ConstKind::Float;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::Long:
        Out.Kind = ConstKind::Long;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::Double:
        Out.Kind = ConstKind::Double;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::String:
        Out.Kind = ConstKind::String;
        Out.Id = M.internStringConst(CF.CP.utf8(E.Ref1));
        return Out;
      default:
        return Error::failure("pack: unsupported ldc constant kind " +
                              std::string(cpTagName(E.Tag)));
      }
    }
    case CpRefKind::ClassRef: {
      auto Id = M.internClassByInternalName(CF.CP.className(I.CpIndex));
      if (!Id)
        return Id.takeError();
      Out.Kind = ConstKind::ClassTarget;
      Out.Id = *Id;
      return Out;
    }
    case CpRefKind::FieldInstance:
    case CpRefKind::FieldStatic: {
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      if (E.Tag != CpTag::FieldRef)
        return Error::failure("pack: field opcode on non-FieldRef");
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      MFieldRef Ref;
      auto Owner =
          M.internClassByInternalName(CF.CP.className(E.Ref1));
      if (!Owner)
        return Owner.takeError();
      Ref.Owner = *Owner;
      Ref.Name = M.internFieldName(CF.CP.utf8(NT.Ref1));
      auto Type = parseFieldDescriptor(CF.CP.utf8(NT.Ref2));
      if (!Type)
        return Type.takeError();
      Ref.Type = M.internTypeDesc(*Type);
      Out.Kind = ConstKind::Field;
      Out.Id = M.internFieldRef(Ref);
      return Out;
    }
    case CpRefKind::MethodVirtual:
    case CpRefKind::MethodSpecial:
    case CpRefKind::MethodStatic:
    case CpRefKind::MethodInterface: {
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      if (E.Tag != CpTag::MethodRef &&
          E.Tag != CpTag::InterfaceMethodRef)
        return Error::failure("pack: invoke opcode on non-method entry");
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      MMethodRef Ref;
      auto Owner =
          M.internClassByInternalName(CF.CP.className(E.Ref1));
      if (!Owner)
        return Owner.takeError();
      Ref.Owner = *Owner;
      Ref.Name = M.internMethodName(CF.CP.utf8(NT.Ref1));
      auto Sig = M.internSignature(CF.CP.utf8(NT.Ref2));
      if (!Sig)
        return Sig.takeError();
      Ref.Sig = std::move(*Sig);
      Out.Kind = ConstKind::Method;
      Out.Id = M.internMethodRef(Ref);
      return Out;
    }
    }
    return Out;
  }

  /// The wire code point for \p I given the current stack state.
  uint8_t wireOpcode(const Insn &I, const CodeOperand &Operand,
                     const FlowState &State) {
    if (I.Opcode == Op::Ldc || I.Opcode == Op::LdcW) {
      bool Short = I.Opcode == Op::Ldc;
      switch (Operand.Kind) {
      case ConstKind::Int:
        return Short ? PseudoLdcInt : PseudoLdcWInt;
      case ConstKind::Float:
        return Short ? PseudoLdcFloat : PseudoLdcWFloat;
      case ConstKind::String:
        return Short ? PseudoLdcString : PseudoLdcWString;
      default:
        assert(false && "bad ldc constant kind");
        return PseudoLdcInt;
      }
    }
    if (I.Opcode == Op::Ldc2W)
      return Operand.Kind == ConstKind::Long ? PseudoLdc2Long
                                             : PseudoLdc2Double;
    if (Options.CollapseOpcodes && !I.IsWide) {
      OpFamily F = familyOf(I.Opcode);
      if (F != OpFamily::None) {
        auto Predicted = variantFor(F, State.top(familyKeyDepth(F)));
        if (Predicted && *Predicted == I.Opcode)
          return pseudoOfFamily(F);
      }
    }
    return static_cast<uint8_t>(I.Opcode);
  }

  Error encodeCode(const ClassFile &CF, const AttributeInfo &Attr) {
    auto Code = parseCodeAttribute(Attr, CF.CP);
    if (!Code)
      return Code.takeError();
    auto Insns = decodeCode(Code->Code);
    if (!Insns)
      return Insns.takeError();

    ByteWriter &Counts = S.out(StreamId::Counts);
    writeVarUInt(Counts, Code->MaxStack);
    writeVarUInt(Counts, Code->MaxLocals);
    writeVarUInt(Counts, Code->ExceptionTable.size());
    writeVarUInt(Counts, Insns->size());
    for (const ExceptionTableEntry &E : Code->ExceptionTable) {
      ByteWriter &B = S.out(StreamId::BranchOffsets);
      writeVarUInt(B, E.StartPc);
      writeVarUInt(B, E.EndPc - E.StartPc);
      writeVarUInt(B, E.HandlerPc);
      if (E.CatchType == 0) {
        S.out(StreamId::Counts).writeU1(0);
      } else {
        S.out(StreamId::Counts).writeU1(1);
        auto CId =
            M.internClassByInternalName(CF.CP.className(E.CatchType));
        if (!CId)
          return CId.takeError();
        refClass(*CId);
      }
    }

    FlowState State;
    State.startMethod();
    for (const ExceptionTableEntry &E : Code->ExceptionTable)
      State.seedHandler(E.HandlerPc);
    for (const Insn &I : *Insns) {
      // Merge the states recorded on forward edges into this offset
      // before the opcode is chosen — the decoder does the same before
      // resolving it.
      State.enterInsn(I.Offset);
      auto Operand = makeOperand(CF, I);
      if (!Operand)
        return Operand.takeError();
      if (auto E = encodeInsn(I, *Operand, State))
        return E;
      InsnTypes Types = insnTypesFor(M, I, *Operand);
      // Debug aid: CJPACK_TRACE=1 dumps the per-instruction stack state
      // on both sides so encoder/decoder divergence is diffable.
      static const bool Trace = getenv("CJPACK_TRACE") != nullptr;
      if (Trace)
        fprintf(stderr, "E %u %s known=%d top=%d ctx=%u\n", I.Offset,
                opInfo(I.Opcode).Mnemonic, State.isKnown(),
                (int)State.top(), State.contextId());
      State.apply(I, &Types);
    }
    return Error::success();
  }

  Error encodeInsn(const Insn &I, const CodeOperand &Operand,
                   FlowState &State) {
    ByteWriter &Ops = S.out(StreamId::Opcodes);
    if (I.IsWide)
      Ops.writeU1(static_cast<uint8_t>(Op::Wide));
    Ops.writeU1(wireOpcode(I, Operand, State));

    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
    case OpFormat::S2:
    case OpFormat::NewArrayType:
      writeVarInt(S.out(StreamId::IntConsts), I.Const);
      break;
    case OpFormat::LocalU1:
      writeVarUInt(S.out(StreamId::Registers), I.LocalIndex);
      break;
    case OpFormat::Iinc:
      writeVarUInt(S.out(StreamId::Registers), I.LocalIndex);
      writeVarInt(S.out(StreamId::IntConsts), I.Const);
      break;
    case OpFormat::CpU1:
    case OpFormat::CpU2:
    case OpFormat::InvokeInterface:
      switch (Operand.Kind) {
      case ConstKind::Int:
        writeVarInt(S.out(StreamId::IntConsts), Operand.IntValue);
        break;
      case ConstKind::Float:
        S.out(StreamId::FloatConsts)
            .writeU4(static_cast<uint32_t>(Operand.RawBits));
        break;
      case ConstKind::Long:
        S.out(StreamId::LongConsts).writeU8(Operand.RawBits);
        break;
      case ConstKind::Double:
        S.out(StreamId::DoubleConsts).writeU8(Operand.RawBits);
        break;
      case ConstKind::String:
        refStringConst(Operand.Id);
        break;
      case ConstKind::ClassTarget:
        refClass(Operand.Id);
        break;
      case ConstKind::Field:
        refFieldRef(I.Opcode == Op::GetStatic || I.Opcode == Op::PutStatic
                        ? PoolKind::FieldStatic
                        : PoolKind::FieldInstance,
                    Operand.Id);
        break;
      case ConstKind::Method:
        refMethodRef(methodPoolFor(I.Opcode), State.contextId(),
                     Operand.Id);
        break;
      case ConstKind::None:
        return makeError("pack: cp opcode without operand record");
      }
      break;
    case OpFormat::Branch2:
    case OpFormat::Branch4:
      writeVarInt(S.out(StreamId::BranchOffsets),
                  I.BranchTarget - static_cast<int32_t>(I.Offset));
      break;
    case OpFormat::MultiANewArray:
      refClass(Operand.Id);
      writeVarUInt(S.out(StreamId::Counts),
                   static_cast<uint32_t>(I.Const));
      break;
    case OpFormat::TableSwitch: {
      writeVarInt(S.out(StreamId::IntConsts), I.SwitchLow);
      writeVarInt(S.out(StreamId::IntConsts), I.SwitchHigh);
      ByteWriter &B = S.out(StreamId::BranchOffsets);
      writeVarInt(B, I.SwitchDefault - static_cast<int32_t>(I.Offset));
      for (int32_t T : I.SwitchTargets)
        writeVarInt(B, T - static_cast<int32_t>(I.Offset));
      break;
    }
    case OpFormat::LookupSwitch: {
      writeVarUInt(S.out(StreamId::Counts), I.SwitchMatches.size());
      ByteWriter &B = S.out(StreamId::BranchOffsets);
      writeVarInt(B, I.SwitchDefault - static_cast<int32_t>(I.Offset));
      for (size_t K = 0; K < I.SwitchMatches.size(); ++K) {
        writeVarInt(S.out(StreamId::IntConsts), I.SwitchMatches[K]);
        writeVarInt(B, I.SwitchTargets[K] - static_cast<int32_t>(I.Offset));
      }
      break;
    }
    case OpFormat::InvokeDynamic:
      return makeError("pack: invokedynamic is not supported (post-1999)");
    case OpFormat::Wide:
      return makeError("pack: unexpected wide format");
    }
    return Error::success();
  }

  Model &M;
  RefEncoder &Enc;
  StreamSet &S;
  const PackOptions &Options;
};

/// RefEncoder sink for seeding a Model through the preload helpers
/// without a real coder (never asked to encode).
class NullRefEncoder final : public RefEncoder {
public:
  bool encode(uint32_t, uint32_t, uint32_t, ByteWriter &) override {
    assert(false && "null encoder only preloads");
    return false;
  }
  bool preload(uint32_t, uint32_t) override { return true; }
};

/// The counting pass's outputs: the shard's interned model and the
/// reference statistics the transient/frequency schemes need.
struct ShardPlan {
  Model M;
  RefStats Stats;
};

/// Pass one over \p Ordered: interns every object and counts refs.
Expected<ShardPlan>
countShardPass(const std::vector<const ClassFile *> &Ordered,
               const PackOptions &Options) {
  ShardPlan Plan;
  CountingRefEncoder Counting(Plan.Stats);
  if (Options.PreloadStandardRefs)
    preloadStandardRefs(Plan.M, Counting, Options.Scheme);
  StreamSet Scratch;
  ArchiveWriter Pass1(Plan.M, Counting, Scratch, Options);
  if (auto E = Pass1.encodeArchive(Ordered))
    return E;
  return Plan;
}

/// Pass two over \p Ordered with \p M / \p Stats from the counting
/// pass: emits the streams. \p Dict, when non-null, is replayed into
/// the coder after the standard preload, exactly as the decoder will.
Expected<StreamSet>
emitShardStreams(const std::vector<const ClassFile *> &Ordered, Model &M,
                 const RefStats &Stats, const SharedDictionary *Dict,
                 const PackOptions &Options) {
  auto Enc = makeRefEncoder(Options.Scheme, &Stats);
  if (Options.PreloadStandardRefs &&
      !preloadStandardRefs(M, *Enc, Options.Scheme))
    return Error::failure("pack: the " +
                          std::string(refSchemeName(Options.Scheme)) +
                          " scheme does not support preloaded "
                          "references");
  if (Dict && !preloadDictionary(M, *Enc, *Dict))
    return Error::failure("pack: the " +
                          std::string(refSchemeName(Options.Scheme)) +
                          " scheme does not support the shard "
                          "dictionary");
  StreamSet S;
  ArchiveWriter Pass2(M, *Enc, S, Options);
  if (auto E = Pass2.encodeArchive(Ordered))
    return E;
  return S;
}

/// Rebuilds a counting-pass plan in the id space the emitting pass will
/// use once \p Dict is seeded first: a fresh model interning the
/// standard preloads, then the dictionary, then the shard's objects in
/// their original first-occurrence order (so ids match the decoder's
/// append order for non-preloaded objects), plus the shard's reference
/// stats translated into the new ids.
ShardPlan remapPlanForDictionary(const ShardPlan &Plan,
                                 const SharedDictionary &Dict,
                                 const PackOptions &Options) {
  ShardPlan Out;
  Model &M2 = Out.M;
  {
    NullRefEncoder Null;
    if (Options.PreloadStandardRefs)
      preloadStandardRefs(M2, Null, Options.Scheme);
    preloadDictionary(M2, Null, Dict);
  }

  const Model &MA = Plan.M;
  std::vector<uint32_t> PkgMap(MA.packageCount()),
      SimpMap(MA.simpleNameCount()), FldMap(MA.fieldNameCount()),
      MthMap(MA.methodNameCount()), StrMap(MA.stringConstCount()),
      CMap(MA.classRefCount()), FMap(MA.fieldRefCount()),
      MMap(MA.methodRefCount());
  for (uint32_t I = 0; I < PkgMap.size(); ++I)
    PkgMap[I] = M2.internPackage(MA.package(I));
  for (uint32_t I = 0; I < SimpMap.size(); ++I)
    SimpMap[I] = M2.internSimpleName(MA.simpleName(I));
  for (uint32_t I = 0; I < FldMap.size(); ++I)
    FldMap[I] = M2.internFieldName(MA.fieldName(I));
  for (uint32_t I = 0; I < MthMap.size(); ++I)
    MthMap[I] = M2.internMethodName(MA.methodName(I));
  for (uint32_t I = 0; I < StrMap.size(); ++I)
    StrMap[I] = M2.internStringConst(MA.stringConst(I));
  for (uint32_t I = 0; I < CMap.size(); ++I) {
    MClassRef R = MA.classRef(I);
    if (R.Base == 'L') {
      R.Package = PkgMap[R.Package];
      R.Simple = SimpMap[R.Simple];
    }
    CMap[I] = M2.internClassRef(R);
  }
  for (uint32_t I = 0; I < FMap.size(); ++I) {
    MFieldRef R = MA.fieldRef(I);
    R.Owner = CMap[R.Owner];
    R.Name = FldMap[R.Name];
    R.Type = CMap[R.Type];
    FMap[I] = M2.internFieldRef(R);
  }
  for (uint32_t I = 0; I < MMap.size(); ++I) {
    MMethodRef R = MA.methodRef(I);
    R.Owner = CMap[R.Owner];
    R.Name = MthMap[R.Name];
    for (uint32_t &C : R.Sig)
      C = CMap[C];
    MMap[I] = M2.internMethodRef(R);
  }

  for (const auto &[Key, Count] : Plan.Stats.counts()) {
    uint32_t Object = Key.second;
    switch (static_cast<PoolKind>(Key.first)) {
    case PoolKind::Package:
      Object = PkgMap[Object];
      break;
    case PoolKind::SimpleName:
      Object = SimpMap[Object];
      break;
    case PoolKind::ClassRefPool:
      Object = CMap[Object];
      break;
    case PoolKind::FieldName:
      Object = FldMap[Object];
      break;
    case PoolKind::MethodName:
      Object = MthMap[Object];
      break;
    case PoolKind::StringConst:
      Object = StrMap[Object];
      break;
    case PoolKind::FieldInstance:
    case PoolKind::FieldStatic:
      Object = FMap[Object];
      break;
    case PoolKind::MethodVirtual:
    case PoolKind::MethodSpecial:
    case PoolKind::MethodStatic:
    case PoolKind::MethodInterface:
      Object = MMap[Object];
      break;
    }
    Out.Stats.add(Key.first, Object, Count);
  }
  return Out;
}

/// The common archive header (shared by both format versions).
void writeArchiveHeader(ByteWriter &W, uint8_t Version,
                        const PackOptions &Options) {
  W.writeU4(0x434A504Bu); // "CJPK"
  W.writeU1(Version);
  W.writeU1(static_cast<uint8_t>(Options.Scheme));
  uint8_t Flags = 0;
  if (Options.CollapseOpcodes)
    Flags |= 1;
  if (Options.CompressStreams)
    Flags |= 2;
  if (Options.PreloadStandardRefs)
    Flags |= 4;
  W.writeU1(Flags);
}

} // namespace

Expected<PackResult>
cjpack::packClasses(const std::vector<ClassFile> &Classes,
                    const PackOptions &Options) {
  // Validate attribute sets up front.
  for (const ClassFile &CF : Classes) {
    auto Check = [&](const std::vector<AttributeInfo> &Attrs) -> Error {
      for (const AttributeInfo &A : Attrs)
        if (!isRecognizedAttribute(A.Name))
          return makeError("pack: unrecognized attribute '" + A.Name +
                           "' (run prepareForPacking first)");
      return Error::success();
    };
    if (auto E = Check(CF.Attributes))
      return E;
    for (const MemberInfo &F : CF.Fields)
      if (auto E = Check(F.Attributes))
        return E;
    for (const MemberInfo &Mth : CF.Methods)
      if (auto E = Check(Mth.Attributes))
        return E;
  }

  std::vector<const ClassFile *> Ordered;
  if (Options.OrderForEagerLoading) {
    for (size_t I : eagerLoadOrder(Classes))
      Ordered.push_back(&Classes[I]);
  } else {
    for (const ClassFile &CF : Classes)
      Ordered.push_back(&CF);
  }

  // Shard assignment is by stable class order: contiguous, balanced
  // slices of the ordered list. Never let scheduling pick — the archive
  // must be a pure function of (input, options, shard count).
  size_t ShardCount = Options.Shards == 0 ? 1 : Options.Shards;
  ShardCount = std::min(ShardCount, std::max<size_t>(Ordered.size(), 1));
  ShardCount = std::min(ShardCount, MaxShards);

  PackResult Result;
  Result.ClassCount = Classes.size();

  if (ShardCount <= 1) {
    // Original single-shard wire format, byte-identical to version 1.
    auto Plan = countShardPass(Ordered, Options);
    if (!Plan)
      return Plan.takeError();
    auto S = emitShardStreams(Ordered, Plan->M, Plan->Stats,
                              /*Dict=*/nullptr, Options);
    if (!S)
      return S.takeError();
    ByteWriter W;
    writeArchiveHeader(W, FormatVersionSerial, Options);
    W.writeBytes(S->serialize(Options.CompressStreams, &Result.Sizes));
    Result.Archive = W.take();
    return Result;
  }

  std::vector<std::vector<const ClassFile *>> Slices(ShardCount);
  size_t Base = Ordered.size() / ShardCount;
  size_t Extra = Ordered.size() % ShardCount;
  size_t Next = 0;
  for (size_t K = 0; K < ShardCount; ++K) {
    size_t Len = Base + (K < Extra ? 1 : 0);
    Slices[K].assign(Ordered.begin() + Next, Ordered.begin() + Next + Len);
    Next += Len;
  }

  // Everything the pool tasks capture must be declared before the pool:
  // on an early error return the pool is destroyed first, and its
  // destructor drains still-queued tasks (a packaged_task future does
  // not block on destruction), so those tasks must find this state
  // alive.
  std::vector<ShardPlan> Plans;
  Plans.reserve(ShardCount);
  std::vector<ShardPlan> Emit(ShardCount);
  SharedDictionary Dict;

  ThreadPool Pool(Options.Threads);

  // Counting passes run one per shard, concurrently.
  std::vector<std::future<Expected<ShardPlan>>> PlanFutures;
  PlanFutures.reserve(ShardCount);
  for (size_t K = 0; K < ShardCount; ++K)
    PlanFutures.push_back(Pool.submit(
        [&Slices, &Options, K] { return countShardPass(Slices[K], Options); }));
  for (auto &F : PlanFutures) {
    auto Plan = F.get();
    if (!Plan)
      return Plan.takeError();
    Plans.push_back(std::move(*Plan));
  }

  // Factor definitions shared by two or more shards into the
  // dictionary, so shards reference them instead of redefining them.
  // Schemes that cannot preload keep fully independent shards.
  if (refSchemeSupportsPreload(Options.Scheme)) {
    Model Standard;
    if (Options.PreloadStandardRefs) {
      NullRefEncoder Null;
      preloadStandardRefs(Standard, Null, Options.Scheme);
    }
    std::vector<const Model *> ShardModels;
    ShardModels.reserve(ShardCount);
    for (const ShardPlan &Plan : Plans)
      ShardModels.push_back(&Plan.M);
    Dict = buildSharedDictionary(
        ShardModels, Options.PreloadStandardRefs ? &Standard : nullptr);
  }
  Result.DictionaryEntries = Dict.entryCount();

  // Emitting passes, again one per shard, on models rebuilt around the
  // dictionary's id space.
  std::vector<std::future<Expected<StreamSet>>> Futures;
  Futures.reserve(ShardCount);
  for (size_t K = 0; K < ShardCount; ++K)
    Futures.push_back(
        Pool.submit([&Slices, &Plans, &Emit, &Dict, &Options, K] {
          Emit[K] = Dict.empty()
                        ? std::move(Plans[K])
                        : remapPlanForDictionary(Plans[K], Dict, Options);
          return emitShardStreams(Slices[K], Emit[K].M, Emit[K].Stats,
                                  Dict.empty() ? nullptr : &Dict, Options);
        }));

  std::vector<StreamSet> ShardStreams;
  ShardStreams.reserve(ShardCount);
  for (auto &F : Futures) {
    auto S = F.get();
    if (!S)
      return S.takeError();
    ShardStreams.push_back(std::move(*S));
  }

  ByteWriter W;
  writeArchiveHeader(W, FormatVersionSharded, Options);
  Dict.serialize(W, Options.CompressStreams);
  Result.DictionaryBytes = W.size() - 7;
  W.writeBytes(serializeShardedStreams(ShardStreams,
                                       Options.CompressStreams,
                                       &Result.Sizes));
  Result.Archive = W.take();
  return Result;
}

Expected<PackResult>
cjpack::packClassBytes(const std::vector<NamedClass> &Classes,
                       const PackOptions &Options) {
  std::vector<ClassFile> Parsed;
  Parsed.reserve(Classes.size());
  for (const NamedClass &C : Classes) {
    auto CF = parseClassFile(C.Data);
    if (!CF)
      return Error::failure(C.Name + ": " + CF.message());
    if (auto E = prepareForPacking(*CF))
      return Error::failure(C.Name + ": " + E.message());
    Parsed.push_back(std::move(*CF));
  }
  return packClasses(Parsed, Options);
}
