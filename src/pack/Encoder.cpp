//===- Encoder.cpp - packed archive encoder -------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Packing runs the same preorder traversal of the restructured model
// twice: a counting pass that gathers the reference statistics the
// transient/frequency schemes need, then the emitting pass. Both passes
// share the Model (interning is idempotent) so object ids are stable.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Instruction.h"
#include "classfile/Transform.h"
#include "pack/ClassOrder.h"
#include "pack/CodeCommon.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include "classfile/Reader.h"
#include "support/VarInt.h"
#include <set>

using namespace cjpack;

namespace {

/// RefEncoder that only counts (pass one). Writes nothing.
class CountingRefEncoder final : public RefEncoder {
public:
  explicit CountingRefEncoder(RefStats &Stats) : Stats(Stats) {}

  bool encode(uint32_t Pool, uint32_t, uint32_t Object,
              ByteWriter &) override {
    Stats.note(Pool, Object);
    return Seen[Pool].insert(Object).second;
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    Seen[Pool].insert(Object);
    return true;
  }

private:
  RefStats &Stats;
  std::map<uint32_t, std::set<uint32_t>> Seen;
};

/// One traversal of the archive, writing refs through \p Enc and
/// primitives into \p S.
class ArchiveWriter {
public:
  ArchiveWriter(Model &M, RefEncoder &Enc, StreamSet &S,
                const PackOptions &Options)
      : M(M), Enc(Enc), S(S), Options(Options) {}

  Error encodeArchive(const std::vector<const ClassFile *> &Classes) {
    writeVarUInt(S.out(StreamId::Counts), Classes.size());
    for (const ClassFile *CF : Classes)
      if (auto E = encodeClass(*CF))
        return E;
    return Error::success();
  }

private:
  //===--------------------------------------------------------------===//
  // Reference emission with inline definitions
  //===--------------------------------------------------------------===//

  void emitString(const std::string &Str, StreamId Chars) {
    writeVarUInt(S.out(StreamId::StringLengths), Str.size());
    S.out(Chars).writeString(Str);
  }

  void refPackage(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::Package), 0, Id,
                   S.out(StreamId::PackageRefs)))
      emitString(M.package(Id), StreamId::ClassNameChars);
  }

  void refSimpleName(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::SimpleName), 0, Id,
                   S.out(StreamId::SimpleNameRefs)))
      emitString(M.simpleName(Id), StreamId::ClassNameChars);
  }

  void refFieldName(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::FieldName), 0, Id,
                   S.out(StreamId::FieldNameRefs)))
      emitString(M.fieldName(Id), StreamId::NameChars);
  }

  void refMethodName(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::MethodName), 0, Id,
                   S.out(StreamId::MethodNameRefs)))
      emitString(M.methodName(Id), StreamId::NameChars);
  }

  void refStringConst(uint32_t Id) {
    if (Enc.encode(poolId(PoolKind::StringConst), 0, Id,
                   S.out(StreamId::StringConstRefs)))
      emitString(M.stringConst(Id), StreamId::StringConstChars);
  }

  void refClass(uint32_t Id) {
    if (!Enc.encode(poolId(PoolKind::ClassRefPool), 0, Id,
                    S.out(StreamId::ClassRefs)))
      return;
    const MClassRef &R = M.classRef(Id);
    writeVarUInt(S.out(StreamId::Counts), R.Dims);
    S.out(StreamId::Counts).writeU1(static_cast<uint8_t>(R.Base));
    if (R.Base == 'L') {
      refPackage(R.Package);
      refSimpleName(R.Simple);
    }
  }

  void refFieldRef(PoolKind Pool, uint32_t Id) {
    Pool = effectivePool(Pool, Options.Scheme);
    if (!Enc.encode(poolId(Pool), 0, Id, S.out(StreamId::FieldRefs)))
      return;
    const MFieldRef &R = M.fieldRef(Id);
    refClass(R.Owner);
    refFieldName(R.Name);
    refClass(R.Type);
  }

  void refMethodRef(PoolKind Pool, uint32_t Sub, uint32_t Id) {
    Pool = effectivePool(Pool, Options.Scheme);
    if (!Enc.encode(poolId(Pool), Sub, Id, S.out(StreamId::MethodRefs)))
      return;
    const MMethodRef &R = M.methodRef(Id);
    refClass(R.Owner);
    refMethodName(R.Name);
    writeVarUInt(S.out(StreamId::Counts), R.Sig.size());
    for (uint32_t C : R.Sig)
      refClass(C);
  }

  //===--------------------------------------------------------------===//
  // Structure
  //===--------------------------------------------------------------===//

  /// The pool a method definition's reference is encoded in, derived
  /// from information the decoder has before reading the reference.
  static PoolKind methodDefPool(uint32_t MethodFlags,
                                uint32_t ClassFlags) {
    if (ClassFlags & AccInterface)
      return PoolKind::MethodInterface;
    if (MethodFlags & AccStatic)
      return PoolKind::MethodStatic;
    if (MethodFlags & AccPrivate)
      return PoolKind::MethodSpecial;
    return PoolKind::MethodVirtual;
  }

  static uint32_t packedMemberFlags(const MemberInfo &MI) {
    uint32_t Flags = MI.AccessFlags;
    if (findAttribute(MI.Attributes, "Synthetic"))
      Flags |= PackedFlagSynthetic;
    if (findAttribute(MI.Attributes, "Deprecated"))
      Flags |= PackedFlagDeprecated;
    return Flags;
  }

  Error encodeClass(const ClassFile &CF) {
    ByteWriter &Counts = S.out(StreamId::Counts);
    ByteWriter &Flags = S.out(StreamId::Flags);

    writeVarUInt(Counts, CF.MinorVersion);
    writeVarUInt(Counts, CF.MajorVersion);

    uint32_t ClassFlags = CF.AccessFlags;
    if (CF.SuperClass != 0)
      ClassFlags |= PackedFlagAux0;
    if (findAttribute(CF.Attributes, "Synthetic"))
      ClassFlags |= PackedFlagSynthetic;
    if (findAttribute(CF.Attributes, "Deprecated"))
      ClassFlags |= PackedFlagDeprecated;
    writeVarUInt(Flags, ClassFlags);

    auto This = M.internClassByInternalName(CF.thisClassName());
    if (!This)
      return This.takeError();
    refClass(*This);
    if (CF.SuperClass != 0) {
      auto Super = M.internClassByInternalName(CF.superClassName());
      if (!Super)
        return Super.takeError();
      refClass(*Super);
    }
    writeVarUInt(Counts, CF.Interfaces.size());
    for (uint16_t Iface : CF.Interfaces) {
      auto Id = M.internClassByInternalName(CF.CP.className(Iface));
      if (!Id)
        return Id.takeError();
      refClass(*Id);
    }

    writeVarUInt(Counts, CF.Fields.size());
    for (const MemberInfo &F : CF.Fields)
      if (auto E = encodeField(CF, *This, F))
        return E;

    writeVarUInt(Counts, CF.Methods.size());
    for (const MemberInfo &Mth : CF.Methods)
      if (auto E = encodeMethod(CF, *This, Mth))
        return E;
    return Error::success();
  }

  Error encodeField(const ClassFile &CF, uint32_t ThisId,
                    const MemberInfo &F) {
    const AttributeInfo *Const =
        findAttribute(F.Attributes, "ConstantValue");
    uint32_t Flags = packedMemberFlags(F);
    if (Const)
      Flags |= PackedFlagAux0;
    writeVarUInt(S.out(StreamId::Flags), Flags);

    auto Type = parseFieldDescriptor(CF.CP.utf8(F.DescriptorIndex));
    if (!Type)
      return Type.takeError();
    MFieldRef Ref;
    Ref.Owner = ThisId;
    Ref.Name = M.internFieldName(CF.CP.utf8(F.NameIndex));
    Ref.Type = M.internTypeDesc(*Type);
    uint32_t Id = M.internFieldRef(Ref);
    PoolKind Pool = (F.AccessFlags & AccStatic) ? PoolKind::FieldStatic
                                                : PoolKind::FieldInstance;
    refFieldRef(Pool, Id);

    if (Const) {
      if (Const->Bytes.size() != 2)
        return makeError("pack: malformed ConstantValue");
      ByteReader CR(Const->Bytes);
      uint16_t CpIdx = CR.readU2();
      if (!CF.CP.isValidIndex(CpIdx))
        return makeError("pack: dangling ConstantValue index");
      const CpEntry &E = CF.CP.entry(CpIdx);
      VType FieldType = M.classRefVType(Ref.Type);
      switch (E.Tag) {
      case CpTag::Integer:
        if (FieldType != VType::Int)
          return makeError("pack: ConstantValue type mismatch");
        writeVarInt(S.out(StreamId::IntConsts),
                    static_cast<int32_t>(E.Bits));
        break;
      case CpTag::Float:
        if (FieldType != VType::Float)
          return makeError("pack: ConstantValue type mismatch");
        S.out(StreamId::FloatConsts).writeU4(static_cast<uint32_t>(E.Bits));
        break;
      case CpTag::Long:
        if (FieldType != VType::Long)
          return makeError("pack: ConstantValue type mismatch");
        S.out(StreamId::LongConsts).writeU8(E.Bits);
        break;
      case CpTag::Double:
        if (FieldType != VType::Double)
          return makeError("pack: ConstantValue type mismatch");
        S.out(StreamId::DoubleConsts).writeU8(E.Bits);
        break;
      case CpTag::String: {
        if (FieldType != VType::Ref)
          return makeError("pack: ConstantValue type mismatch");
        uint32_t SId = M.internStringConst(CF.CP.utf8(E.Ref1));
        refStringConst(SId);
        break;
      }
      default:
        return makeError("pack: unsupported ConstantValue tag");
      }
    }
    return Error::success();
  }

  Error encodeMethod(const ClassFile &CF, uint32_t ThisId,
                     const MemberInfo &Mth) {
    const AttributeInfo *Code = findAttribute(Mth.Attributes, "Code");
    const AttributeInfo *Exceptions =
        findAttribute(Mth.Attributes, "Exceptions");
    uint32_t Flags = packedMemberFlags(Mth);
    if (Code)
      Flags |= PackedFlagAux0;
    if (Exceptions)
      Flags |= PackedFlagAux1;
    writeVarUInt(S.out(StreamId::Flags), Flags);

    MMethodRef Ref;
    Ref.Owner = ThisId;
    Ref.Name = M.internMethodName(CF.CP.utf8(Mth.NameIndex));
    auto Sig = M.internSignature(CF.CP.utf8(Mth.DescriptorIndex));
    if (!Sig)
      return Sig.takeError();
    Ref.Sig = std::move(*Sig);
    uint32_t Id = M.internMethodRef(Ref);
    refMethodRef(methodDefPool(Mth.AccessFlags, CF.AccessFlags), 0, Id);

    if (Exceptions) {
      ByteReader ER(Exceptions->Bytes);
      uint16_t N = ER.readU2();
      writeVarUInt(S.out(StreamId::Counts), N);
      for (uint16_t K = 0; K < N; ++K) {
        uint16_t CpIdx = ER.readU2();
        if (ER.hasError() || !CF.CP.isValidIndex(CpIdx))
          return makeError("pack: malformed Exceptions attribute");
        auto CId = M.internClassByInternalName(CF.CP.className(CpIdx));
        if (!CId)
          return CId.takeError();
        refClass(*CId);
      }
    }

    if (Code)
      return encodeCode(CF, *Code);
    return Error::success();
  }

  //===--------------------------------------------------------------===//
  // Bytecode (§7)
  //===--------------------------------------------------------------===//

  Expected<CodeOperand> makeOperand(const ClassFile &CF, const Insn &I) {
    CodeOperand Out;
    switch (cpRefKind(I.Opcode)) {
    case CpRefKind::None:
      return Out;
    case CpRefKind::LoadConst:
    case CpRefKind::LoadConst2: {
      if (!CF.CP.isValidIndex(I.CpIndex))
        return Error::failure("pack: dangling ldc operand");
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      switch (E.Tag) {
      case CpTag::Integer:
        Out.Kind = ConstKind::Int;
        Out.IntValue = static_cast<int32_t>(E.Bits);
        return Out;
      case CpTag::Float:
        Out.Kind = ConstKind::Float;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::Long:
        Out.Kind = ConstKind::Long;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::Double:
        Out.Kind = ConstKind::Double;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::String:
        Out.Kind = ConstKind::String;
        Out.Id = M.internStringConst(CF.CP.utf8(E.Ref1));
        return Out;
      default:
        return Error::failure("pack: unsupported ldc constant kind " +
                              std::string(cpTagName(E.Tag)));
      }
    }
    case CpRefKind::ClassRef: {
      auto Id = M.internClassByInternalName(CF.CP.className(I.CpIndex));
      if (!Id)
        return Id.takeError();
      Out.Kind = ConstKind::ClassTarget;
      Out.Id = *Id;
      return Out;
    }
    case CpRefKind::FieldInstance:
    case CpRefKind::FieldStatic: {
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      if (E.Tag != CpTag::FieldRef)
        return Error::failure("pack: field opcode on non-FieldRef");
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      MFieldRef Ref;
      auto Owner =
          M.internClassByInternalName(CF.CP.className(E.Ref1));
      if (!Owner)
        return Owner.takeError();
      Ref.Owner = *Owner;
      Ref.Name = M.internFieldName(CF.CP.utf8(NT.Ref1));
      auto Type = parseFieldDescriptor(CF.CP.utf8(NT.Ref2));
      if (!Type)
        return Type.takeError();
      Ref.Type = M.internTypeDesc(*Type);
      Out.Kind = ConstKind::Field;
      Out.Id = M.internFieldRef(Ref);
      return Out;
    }
    case CpRefKind::MethodVirtual:
    case CpRefKind::MethodSpecial:
    case CpRefKind::MethodStatic:
    case CpRefKind::MethodInterface: {
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      if (E.Tag != CpTag::MethodRef &&
          E.Tag != CpTag::InterfaceMethodRef)
        return Error::failure("pack: invoke opcode on non-method entry");
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      MMethodRef Ref;
      auto Owner =
          M.internClassByInternalName(CF.CP.className(E.Ref1));
      if (!Owner)
        return Owner.takeError();
      Ref.Owner = *Owner;
      Ref.Name = M.internMethodName(CF.CP.utf8(NT.Ref1));
      auto Sig = M.internSignature(CF.CP.utf8(NT.Ref2));
      if (!Sig)
        return Sig.takeError();
      Ref.Sig = std::move(*Sig);
      Out.Kind = ConstKind::Method;
      Out.Id = M.internMethodRef(Ref);
      return Out;
    }
    }
    return Out;
  }

  /// The wire code point for \p I given the current stack state.
  uint8_t wireOpcode(const Insn &I, const CodeOperand &Operand,
                     const StackState &State) {
    if (I.Opcode == Op::Ldc || I.Opcode == Op::LdcW) {
      bool Short = I.Opcode == Op::Ldc;
      switch (Operand.Kind) {
      case ConstKind::Int:
        return Short ? PseudoLdcInt : PseudoLdcWInt;
      case ConstKind::Float:
        return Short ? PseudoLdcFloat : PseudoLdcWFloat;
      case ConstKind::String:
        return Short ? PseudoLdcString : PseudoLdcWString;
      default:
        assert(false && "bad ldc constant kind");
        return PseudoLdcInt;
      }
    }
    if (I.Opcode == Op::Ldc2W)
      return Operand.Kind == ConstKind::Long ? PseudoLdc2Long
                                             : PseudoLdc2Double;
    if (Options.CollapseOpcodes && !I.IsWide) {
      OpFamily F = familyOf(I.Opcode);
      if (F != OpFamily::None) {
        auto Predicted = variantFor(F, State.top(familyKeyDepth(F)));
        if (Predicted && *Predicted == I.Opcode)
          return pseudoOfFamily(F);
      }
    }
    return static_cast<uint8_t>(I.Opcode);
  }

  Error encodeCode(const ClassFile &CF, const AttributeInfo &Attr) {
    auto Code = parseCodeAttribute(Attr, CF.CP);
    if (!Code)
      return Code.takeError();
    auto Insns = decodeCode(Code->Code);
    if (!Insns)
      return Insns.takeError();

    ByteWriter &Counts = S.out(StreamId::Counts);
    writeVarUInt(Counts, Code->MaxStack);
    writeVarUInt(Counts, Code->MaxLocals);
    writeVarUInt(Counts, Code->ExceptionTable.size());
    writeVarUInt(Counts, Insns->size());
    for (const ExceptionTableEntry &E : Code->ExceptionTable) {
      ByteWriter &B = S.out(StreamId::BranchOffsets);
      writeVarUInt(B, E.StartPc);
      writeVarUInt(B, E.EndPc - E.StartPc);
      writeVarUInt(B, E.HandlerPc);
      if (E.CatchType == 0) {
        S.out(StreamId::Counts).writeU1(0);
      } else {
        S.out(StreamId::Counts).writeU1(1);
        auto CId =
            M.internClassByInternalName(CF.CP.className(E.CatchType));
        if (!CId)
          return CId.takeError();
        refClass(*CId);
      }
    }

    StackState State;
    State.startMethod();
    for (const Insn &I : *Insns) {
      auto Operand = makeOperand(CF, I);
      if (!Operand)
        return Operand.takeError();
      if (auto E = encodeInsn(I, *Operand, State))
        return E;
      InsnTypes Types = insnTypesFor(M, I, *Operand);
      // Debug aid: CJPACK_TRACE=1 dumps the per-instruction stack state
      // on both sides so encoder/decoder divergence is diffable.
      static const bool Trace = getenv("CJPACK_TRACE") != nullptr;
      if (Trace)
        fprintf(stderr, "E %u %s known=%d top=%d ctx=%u\n", I.Offset,
                opInfo(I.Opcode).Mnemonic, State.isKnown(),
                (int)State.top(), State.contextId());
      State.apply(I, &Types);
    }
    return Error::success();
  }

  Error encodeInsn(const Insn &I, const CodeOperand &Operand,
                   StackState &State) {
    ByteWriter &Ops = S.out(StreamId::Opcodes);
    if (I.IsWide)
      Ops.writeU1(static_cast<uint8_t>(Op::Wide));
    Ops.writeU1(wireOpcode(I, Operand, State));

    switch (opInfo(I.Opcode).Format) {
    case OpFormat::None:
      break;
    case OpFormat::S1:
    case OpFormat::S2:
    case OpFormat::NewArrayType:
      writeVarInt(S.out(StreamId::IntConsts), I.Const);
      break;
    case OpFormat::LocalU1:
      writeVarUInt(S.out(StreamId::Registers), I.LocalIndex);
      break;
    case OpFormat::Iinc:
      writeVarUInt(S.out(StreamId::Registers), I.LocalIndex);
      writeVarInt(S.out(StreamId::IntConsts), I.Const);
      break;
    case OpFormat::CpU1:
    case OpFormat::CpU2:
    case OpFormat::InvokeInterface:
      switch (Operand.Kind) {
      case ConstKind::Int:
        writeVarInt(S.out(StreamId::IntConsts), Operand.IntValue);
        break;
      case ConstKind::Float:
        S.out(StreamId::FloatConsts)
            .writeU4(static_cast<uint32_t>(Operand.RawBits));
        break;
      case ConstKind::Long:
        S.out(StreamId::LongConsts).writeU8(Operand.RawBits);
        break;
      case ConstKind::Double:
        S.out(StreamId::DoubleConsts).writeU8(Operand.RawBits);
        break;
      case ConstKind::String:
        refStringConst(Operand.Id);
        break;
      case ConstKind::ClassTarget:
        refClass(Operand.Id);
        break;
      case ConstKind::Field:
        refFieldRef(I.Opcode == Op::GetStatic || I.Opcode == Op::PutStatic
                        ? PoolKind::FieldStatic
                        : PoolKind::FieldInstance,
                    Operand.Id);
        break;
      case ConstKind::Method:
        refMethodRef(methodPoolFor(I.Opcode), State.contextId(),
                     Operand.Id);
        break;
      case ConstKind::None:
        return makeError("pack: cp opcode without operand record");
      }
      break;
    case OpFormat::Branch2:
    case OpFormat::Branch4:
      writeVarInt(S.out(StreamId::BranchOffsets),
                  I.BranchTarget - static_cast<int32_t>(I.Offset));
      break;
    case OpFormat::MultiANewArray:
      refClass(Operand.Id);
      writeVarUInt(S.out(StreamId::Counts),
                   static_cast<uint32_t>(I.Const));
      break;
    case OpFormat::TableSwitch: {
      writeVarInt(S.out(StreamId::IntConsts), I.SwitchLow);
      writeVarInt(S.out(StreamId::IntConsts), I.SwitchHigh);
      ByteWriter &B = S.out(StreamId::BranchOffsets);
      writeVarInt(B, I.SwitchDefault - static_cast<int32_t>(I.Offset));
      for (int32_t T : I.SwitchTargets)
        writeVarInt(B, T - static_cast<int32_t>(I.Offset));
      break;
    }
    case OpFormat::LookupSwitch: {
      writeVarUInt(S.out(StreamId::Counts), I.SwitchMatches.size());
      ByteWriter &B = S.out(StreamId::BranchOffsets);
      writeVarInt(B, I.SwitchDefault - static_cast<int32_t>(I.Offset));
      for (size_t K = 0; K < I.SwitchMatches.size(); ++K) {
        writeVarInt(S.out(StreamId::IntConsts), I.SwitchMatches[K]);
        writeVarInt(B, I.SwitchTargets[K] - static_cast<int32_t>(I.Offset));
      }
      break;
    }
    case OpFormat::InvokeDynamic:
      return makeError("pack: invokedynamic is not supported (post-1999)");
    case OpFormat::Wide:
      return makeError("pack: unexpected wide format");
    }
    return Error::success();
  }

  Model &M;
  RefEncoder &Enc;
  StreamSet &S;
  const PackOptions &Options;
};

} // namespace

Expected<PackResult>
cjpack::packClasses(const std::vector<ClassFile> &Classes,
                    const PackOptions &Options) {
  // Validate attribute sets up front.
  for (const ClassFile &CF : Classes) {
    auto Check = [&](const std::vector<AttributeInfo> &Attrs) -> Error {
      for (const AttributeInfo &A : Attrs)
        if (!isRecognizedAttribute(A.Name))
          return makeError("pack: unrecognized attribute '" + A.Name +
                           "' (run prepareForPacking first)");
      return Error::success();
    };
    if (auto E = Check(CF.Attributes))
      return E;
    for (const MemberInfo &F : CF.Fields)
      if (auto E = Check(F.Attributes))
        return E;
    for (const MemberInfo &Mth : CF.Methods)
      if (auto E = Check(Mth.Attributes))
        return E;
  }

  std::vector<const ClassFile *> Ordered;
  if (Options.OrderForEagerLoading) {
    for (size_t I : eagerLoadOrder(Classes))
      Ordered.push_back(&Classes[I]);
  } else {
    for (const ClassFile &CF : Classes)
      Ordered.push_back(&CF);
  }

  Model M;
  RefStats Stats;
  {
    CountingRefEncoder Counting(Stats);
    if (Options.PreloadStandardRefs)
      preloadStandardRefs(M, Counting, Options.Scheme);
    StreamSet Scratch;
    ArchiveWriter Pass1(M, Counting, Scratch, Options);
    if (auto E = Pass1.encodeArchive(Ordered))
      return E;
  }

  auto Enc = makeRefEncoder(Options.Scheme, &Stats);
  if (Options.PreloadStandardRefs &&
      !preloadStandardRefs(M, *Enc, Options.Scheme))
    return Error::failure("pack: the " +
                          std::string(refSchemeName(Options.Scheme)) +
                          " scheme does not support preloaded "
                          "references");
  StreamSet S;
  ArchiveWriter Pass2(M, *Enc, S, Options);
  if (auto E = Pass2.encodeArchive(Ordered))
    return E;

  PackResult Result;
  Result.ClassCount = Classes.size();
  ByteWriter W;
  W.writeU4(0x434A504Bu); // "CJPK"
  W.writeU1(1);           // format version
  W.writeU1(static_cast<uint8_t>(Options.Scheme));
  uint8_t Flags = 0;
  if (Options.CollapseOpcodes)
    Flags |= 1;
  if (Options.CompressStreams)
    Flags |= 2;
  if (Options.PreloadStandardRefs)
    Flags |= 4;
  W.writeU1(Flags);
  std::vector<uint8_t> Streams =
      S.serialize(Options.CompressStreams, &Result.Sizes);
  W.writeBytes(Streams);
  Result.Archive = W.take();
  return Result;
}

Expected<PackResult>
cjpack::packClassBytes(const std::vector<NamedClass> &Classes,
                       const PackOptions &Options) {
  std::vector<ClassFile> Parsed;
  Parsed.reserve(Classes.size());
  for (const NamedClass &C : Classes) {
    auto CF = parseClassFile(C.Data);
    if (!CF)
      return Error::failure(C.Name + ": " + CF.message());
    if (auto E = prepareForPacking(*CF))
      return Error::failure(C.Name + ": " + E.message());
    Parsed.push_back(std::move(*CF));
  }
  return packClasses(Parsed, Options);
}
