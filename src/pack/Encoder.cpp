//===- Encoder.cpp - packed archive encoder -------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Packing is three passes. A lowering pass converts each classfile into
// the shared wire records (Transcode.h), interning every object into the
// shard's Model in traversal order — the order that fixes object ids on
// both sides. A counting pass then drives the shared Transcriber over
// the records with a counting coder to gather the reference statistics
// the transient/frequency schemes need, and the emitting pass drives the
// same Transcriber again with the real coder to write the streams. The
// two codec passes perform the identical traversal (same records, same
// transcriber), so first-occurrence structure and ids line up by
// construction.
//
//===----------------------------------------------------------------------===//

#include "analysis/ArchiveAnalysis.h"
#include "analysis/Verifier.h"
#include "classfile/Reader.h"
#include "classfile/Transform.h"
#include "classfile/Writer.h"
#include "pack/ArchiveIndex.h"
#include "pack/ClassOrder.h"
#include "pack/Dictionary.h"
#include "pack/Packer.h"
#include "pack/Preload.h"
#include "pack/Transcode.h"
#include "support/Sha1.h"
#include "support/ThreadPool.h"
#include "support/VarInt.h"
#include <algorithm>
#include <map>
#include <set>
#include <thread>

using namespace cjpack;

namespace {

/// RefEncoder that only counts (the counting pass). Writes nothing.
class CountingRefEncoder final : public RefEncoder {
public:
  explicit CountingRefEncoder(RefStats &Stats) : Stats(Stats) {}

  bool encode(uint32_t Pool, uint32_t, uint32_t Object,
              ByteWriter &) override {
    Stats.note(Pool, Object);
    return Seen[Pool].insert(Object).second;
  }

  bool preload(uint32_t Pool, uint32_t Object) override {
    Seen[Pool].insert(Object);
    return true;
  }

private:
  RefStats &Stats;
  std::map<uint32_t, std::set<uint32_t>> Seen;
};

/// Lowers classfiles into the shared wire records, interning every
/// referenced object into \p M. The intern calls happen in the same
/// preorder the Transcriber will visit the records in, so object ids
/// equal their first-occurrence order on the wire.
class Lowerer {
public:
  explicit Lowerer(Model &M) : M(M) {}

  Expected<ClassRec> lowerClass(const ClassFile &CF) {
    ClassRec R;
    R.MinorVersion = CF.MinorVersion;
    R.MajorVersion = CF.MajorVersion;

    uint32_t ClassFlags = CF.AccessFlags;
    if (CF.SuperClass != 0)
      ClassFlags |= PackedFlagAux0;
    if (findAttribute(CF.Attributes, "Synthetic"))
      ClassFlags |= PackedFlagSynthetic;
    if (findAttribute(CF.Attributes, "Deprecated"))
      ClassFlags |= PackedFlagDeprecated;
    R.Flags = ClassFlags;

    auto This = M.internClassByInternalName(CF.thisClassName());
    if (!This)
      return This.takeError();
    R.ThisId = *This;
    R.HasSuper = CF.SuperClass != 0;
    if (R.HasSuper) {
      auto Super = M.internClassByInternalName(CF.superClassName());
      if (!Super)
        return Super.takeError();
      R.SuperId = *Super;
    }
    for (uint16_t Iface : CF.Interfaces) {
      auto Id = M.internClassByInternalName(CF.CP.className(Iface));
      if (!Id)
        return Id.takeError();
      R.Interfaces.push_back(*Id);
    }

    for (const MemberInfo &F : CF.Fields) {
      FieldRec Rec;
      if (auto E = lowerField(CF, R.ThisId, F, Rec))
        return E;
      R.Fields.push_back(std::move(Rec));
    }
    for (const MemberInfo &Mth : CF.Methods) {
      MethodRec Rec;
      if (auto E = lowerMethod(CF, R.ThisId, Mth, Rec))
        return E;
      R.Methods.push_back(std::move(Rec));
    }
    return R;
  }

private:
  static uint32_t packedMemberFlags(const MemberInfo &MI) {
    uint32_t Flags = MI.AccessFlags;
    if (findAttribute(MI.Attributes, "Synthetic"))
      Flags |= PackedFlagSynthetic;
    if (findAttribute(MI.Attributes, "Deprecated"))
      Flags |= PackedFlagDeprecated;
    return Flags;
  }

  Error lowerField(const ClassFile &CF, uint32_t ThisId,
                   const MemberInfo &F, FieldRec &Out) {
    const AttributeInfo *Const =
        findAttribute(F.Attributes, "ConstantValue");
    Out.Flags = packedMemberFlags(F);
    if (Const)
      Out.Flags |= PackedFlagAux0;

    auto Type = parseFieldDescriptor(CF.CP.utf8(F.DescriptorIndex));
    if (!Type)
      return Type.takeError();
    MFieldRef Ref;
    Ref.Owner = ThisId;
    Ref.Name = M.internFieldName(CF.CP.utf8(F.NameIndex));
    Ref.Type = M.internTypeDesc(*Type);
    Out.RefId = M.internFieldRef(Ref);

    if (Const) {
      if (Const->Bytes.size() != 2)
        return makeError("pack: malformed ConstantValue");
      ByteReader CR(Const->Bytes);
      uint16_t CpIdx = CR.readU2();
      if (!CF.CP.isValidIndex(CpIdx))
        return makeError("pack: dangling ConstantValue index");
      const CpEntry &E = CF.CP.entry(CpIdx);
      VType FieldType = M.classRefVType(Ref.Type);
      switch (E.Tag) {
      case CpTag::Integer:
        if (FieldType != VType::Int)
          return makeError("pack: ConstantValue type mismatch");
        Out.Const.Kind = ConstKind::Int;
        Out.Const.IntValue = static_cast<int32_t>(E.Bits);
        break;
      case CpTag::Float:
        if (FieldType != VType::Float)
          return makeError("pack: ConstantValue type mismatch");
        Out.Const.Kind = ConstKind::Float;
        Out.Const.RawBits = E.Bits;
        break;
      case CpTag::Long:
        if (FieldType != VType::Long)
          return makeError("pack: ConstantValue type mismatch");
        Out.Const.Kind = ConstKind::Long;
        Out.Const.RawBits = E.Bits;
        break;
      case CpTag::Double:
        if (FieldType != VType::Double)
          return makeError("pack: ConstantValue type mismatch");
        Out.Const.Kind = ConstKind::Double;
        Out.Const.RawBits = E.Bits;
        break;
      case CpTag::String:
        if (FieldType != VType::Ref)
          return makeError("pack: ConstantValue type mismatch");
        Out.Const.Kind = ConstKind::String;
        Out.Const.Id = M.internStringConst(CF.CP.utf8(E.Ref1));
        break;
      default:
        return makeError("pack: unsupported ConstantValue tag");
      }
    }
    return Error::success();
  }

  Error lowerMethod(const ClassFile &CF, uint32_t ThisId,
                    const MemberInfo &Mth, MethodRec &Out) {
    const AttributeInfo *Code = findAttribute(Mth.Attributes, "Code");
    const AttributeInfo *Exceptions =
        findAttribute(Mth.Attributes, "Exceptions");
    Out.Flags = packedMemberFlags(Mth);
    if (Code)
      Out.Flags |= PackedFlagAux0;
    if (Exceptions)
      Out.Flags |= PackedFlagAux1;

    MMethodRef Ref;
    Ref.Owner = ThisId;
    Ref.Name = M.internMethodName(CF.CP.utf8(Mth.NameIndex));
    auto Sig = M.internSignature(CF.CP.utf8(Mth.DescriptorIndex));
    if (!Sig)
      return Sig.takeError();
    Ref.Sig = std::move(*Sig);
    Out.RefId = M.internMethodRef(Ref);

    if (Exceptions) {
      ByteReader ER(Exceptions->Bytes);
      uint16_t N = ER.readU2();
      for (uint16_t K = 0; K < N; ++K) {
        uint16_t CpIdx = ER.readU2();
        if (ER.hasError() || !CF.CP.isValidIndex(CpIdx))
          return makeError("pack: malformed Exceptions attribute");
        auto CId = M.internClassByInternalName(CF.CP.className(CpIdx));
        if (!CId)
          return CId.takeError();
        Out.Exceptions.push_back(*CId);
      }
    }

    if (Code) {
      CodeRec Rec;
      if (auto E = lowerCode(CF, *Code, Rec))
        return E;
      Out.Code = std::move(Rec);
    }
    return Error::success();
  }

  Error lowerCode(const ClassFile &CF, const AttributeInfo &Attr,
                  CodeRec &Out) {
    auto Code = parseCodeAttribute(Attr, CF.CP);
    if (!Code)
      return Code.takeError();
    auto Insns = decodeCode(Code->Code);
    if (!Insns)
      return Insns.takeError();

    Out.MaxStack = Code->MaxStack;
    Out.MaxLocals = Code->MaxLocals;
    for (const ExceptionTableEntry &E : Code->ExceptionTable) {
      CodeRec::Handler H;
      H.StartPc = E.StartPc;
      H.EndPc = E.EndPc;
      H.HandlerPc = E.HandlerPc;
      H.HasCatch = E.CatchType != 0;
      if (H.HasCatch) {
        auto CId =
            M.internClassByInternalName(CF.CP.className(E.CatchType));
        if (!CId)
          return CId.takeError();
        H.CatchClass = *CId;
      }
      Out.Table.push_back(H);
    }

    Out.Insns = std::move(*Insns);
    Out.Operands.reserve(Out.Insns.size());
    for (const Insn &I : Out.Insns) {
      auto Operand = makeOperand(CF, I);
      if (!Operand)
        return Operand.takeError();
      Out.Operands.push_back(*Operand);
    }
    return Error::success();
  }

  Expected<CodeOperand> makeOperand(const ClassFile &CF, const Insn &I) {
    CodeOperand Out;
    switch (cpRefKind(I.Opcode)) {
    case CpRefKind::None:
      return Out;
    case CpRefKind::LoadConst:
    case CpRefKind::LoadConst2: {
      if (!CF.CP.isValidIndex(I.CpIndex))
        return Error::failure("pack: dangling ldc operand");
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      switch (E.Tag) {
      case CpTag::Integer:
        Out.Kind = ConstKind::Int;
        Out.IntValue = static_cast<int32_t>(E.Bits);
        return Out;
      case CpTag::Float:
        Out.Kind = ConstKind::Float;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::Long:
        Out.Kind = ConstKind::Long;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::Double:
        Out.Kind = ConstKind::Double;
        Out.RawBits = E.Bits;
        return Out;
      case CpTag::String:
        Out.Kind = ConstKind::String;
        Out.Id = M.internStringConst(CF.CP.utf8(E.Ref1));
        return Out;
      default:
        return Error::failure("pack: unsupported ldc constant kind " +
                              std::string(cpTagName(E.Tag)));
      }
    }
    case CpRefKind::ClassRef: {
      auto Id = M.internClassByInternalName(CF.CP.className(I.CpIndex));
      if (!Id)
        return Id.takeError();
      Out.Kind = ConstKind::ClassTarget;
      Out.Id = *Id;
      return Out;
    }
    case CpRefKind::FieldInstance:
    case CpRefKind::FieldStatic: {
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      if (E.Tag != CpTag::FieldRef)
        return Error::failure("pack: field opcode on non-FieldRef");
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      MFieldRef Ref;
      auto Owner =
          M.internClassByInternalName(CF.CP.className(E.Ref1));
      if (!Owner)
        return Owner.takeError();
      Ref.Owner = *Owner;
      Ref.Name = M.internFieldName(CF.CP.utf8(NT.Ref1));
      auto Type = parseFieldDescriptor(CF.CP.utf8(NT.Ref2));
      if (!Type)
        return Type.takeError();
      Ref.Type = M.internTypeDesc(*Type);
      Out.Kind = ConstKind::Field;
      Out.Id = M.internFieldRef(Ref);
      return Out;
    }
    case CpRefKind::MethodVirtual:
    case CpRefKind::MethodSpecial:
    case CpRefKind::MethodStatic:
    case CpRefKind::MethodInterface: {
      const CpEntry &E = CF.CP.entry(I.CpIndex);
      if (E.Tag != CpTag::MethodRef &&
          E.Tag != CpTag::InterfaceMethodRef)
        return Error::failure("pack: invoke opcode on non-method entry");
      const CpEntry &NT = CF.CP.entry(E.Ref2);
      MMethodRef Ref;
      auto Owner =
          M.internClassByInternalName(CF.CP.className(E.Ref1));
      if (!Owner)
        return Owner.takeError();
      Ref.Owner = *Owner;
      Ref.Name = M.internMethodName(CF.CP.utf8(NT.Ref1));
      auto Sig = M.internSignature(CF.CP.utf8(NT.Ref2));
      if (!Sig)
        return Sig.takeError();
      Ref.Sig = std::move(*Sig);
      Out.Kind = ConstKind::Method;
      Out.Id = M.internMethodRef(Ref);
      return Out;
    }
    }
    return Out;
  }

  Model &M;
};

/// RefEncoder sink for seeding a Model through the preload helpers
/// without a real coder (never asked to encode).
class NullRefEncoder final : public RefEncoder {
public:
  bool encode(uint32_t, uint32_t, uint32_t, ByteWriter &) override {
    assert(false && "null encoder only preloads");
    return false;
  }
  bool preload(uint32_t, uint32_t) override { return true; }
};

/// The counting pass's outputs: the shard's interned model, its classes
/// lowered to wire records, and the reference statistics the
/// transient/frequency schemes need.
struct ShardPlan {
  Model M;
  RefStats Stats;
  std::vector<ClassRec> Recs;
};

/// Pass one over \p Ordered: lowers every class (interning every
/// object) and drives the counting coder over the records.
Expected<ShardPlan>
countShardPass(const std::vector<const ClassFile *> &Ordered,
               const PackOptions &Options) {
  ShardPlan Plan;
  CountingRefEncoder Counting(Plan.Stats);
  if (Options.PreloadStandardRefs)
    preloadStandardRefs(Plan.M, Counting, Options.Scheme);
  Lowerer Low(Plan.M);
  Plan.Recs.reserve(Ordered.size());
  for (const ClassFile *CF : Ordered) {
    auto R = Low.lowerClass(*CF);
    if (!R)
      return R.takeError();
    Plan.Recs.push_back(std::move(*R));
  }
  StreamSet Scratch;
  EncodeContext C{Plan.M, Counting, Scratch, Options.Scheme,
                  Options.CollapseOpcodes};
  Transcriber<EncodeContext> Pass1(C);
  if (auto E = Pass1.transcodeArchive(Plan.Recs))
    return E;
  return Plan;
}

/// Pass two over \p Plan's records with the model and stats from the
/// counting pass: emits the streams. \p Dict, when non-null, is
/// replayed into the coder after the standard preload, exactly as the
/// decoder will. \p Items and \p Tally, when non-null, receive the
/// per-stream item counts and per-pool coder tallies (observational).
Expected<StreamSet>
emitShardStreams(ShardPlan &Plan, const SharedDictionary *Dict,
                 const PackOptions &Options,
                 std::array<uint64_t, NumStreams> *Items,
                 CoderTally *Tally) {
  auto Enc = makeRefEncoder(Options.Scheme, &Plan.Stats);
  if (Options.PreloadStandardRefs &&
      !preloadStandardRefs(Plan.M, *Enc, Options.Scheme))
    return Error::failure("pack: the " +
                          std::string(refSchemeName(Options.Scheme)) +
                          " scheme does not support preloaded "
                          "references");
  if (Dict && !preloadDictionary(Plan.M, *Enc, *Dict))
    return Error::failure("pack: the " +
                          std::string(refSchemeName(Options.Scheme)) +
                          " scheme does not support the shard "
                          "dictionary");
  Enc->setTally(Tally);
  StreamSet S;
  EncodeContext C{Plan.M, *Enc, S, Options.Scheme,
                  Options.CollapseOpcodes, Items};
  Transcriber<EncodeContext> Pass2(C);
  if (auto E = Pass2.transcodeArchive(Plan.Recs))
    return E;
  return S;
}

/// Rebuilds a counting-pass plan in the id space the emitting pass will
/// use once \p Dict is seeded first: a fresh model interning the
/// standard preloads, then the dictionary, then the shard's objects in
/// their original first-occurrence order (so ids match the decoder's
/// append order for non-preloaded objects), plus the shard's records
/// and reference stats translated into the new ids.
ShardPlan remapPlanForDictionary(ShardPlan Plan,
                                 const SharedDictionary &Dict,
                                 const PackOptions &Options) {
  ShardPlan Out;
  Model &M2 = Out.M;
  {
    NullRefEncoder Null;
    if (Options.PreloadStandardRefs)
      preloadStandardRefs(M2, Null, Options.Scheme);
    preloadDictionary(M2, Null, Dict);
  }

  const Model &MA = Plan.M;
  std::vector<uint32_t> PkgMap(MA.packageCount()),
      SimpMap(MA.simpleNameCount()), FldMap(MA.fieldNameCount()),
      MthMap(MA.methodNameCount()), StrMap(MA.stringConstCount()),
      CMap(MA.classRefCount()), FMap(MA.fieldRefCount()),
      MMap(MA.methodRefCount());
  for (uint32_t I = 0; I < PkgMap.size(); ++I)
    PkgMap[I] = M2.internPackage(MA.package(I));
  for (uint32_t I = 0; I < SimpMap.size(); ++I)
    SimpMap[I] = M2.internSimpleName(MA.simpleName(I));
  for (uint32_t I = 0; I < FldMap.size(); ++I)
    FldMap[I] = M2.internFieldName(MA.fieldName(I));
  for (uint32_t I = 0; I < MthMap.size(); ++I)
    MthMap[I] = M2.internMethodName(MA.methodName(I));
  for (uint32_t I = 0; I < StrMap.size(); ++I)
    StrMap[I] = M2.internStringConst(MA.stringConst(I));
  for (uint32_t I = 0; I < CMap.size(); ++I) {
    MClassRef R = MA.classRef(I);
    if (R.Base == 'L') {
      R.Package = PkgMap[R.Package];
      R.Simple = SimpMap[R.Simple];
    }
    CMap[I] = M2.internClassRef(R);
  }
  for (uint32_t I = 0; I < FMap.size(); ++I) {
    MFieldRef R = MA.fieldRef(I);
    R.Owner = CMap[R.Owner];
    R.Name = FldMap[R.Name];
    R.Type = CMap[R.Type];
    FMap[I] = M2.internFieldRef(R);
  }
  for (uint32_t I = 0; I < MMap.size(); ++I) {
    MMethodRef R = MA.methodRef(I);
    R.Owner = CMap[R.Owner];
    R.Name = MthMap[R.Name];
    for (uint32_t &C : R.Sig)
      C = CMap[C];
    MMap[I] = M2.internMethodRef(R);
  }

  for (const auto &[Key, Count] : Plan.Stats.counts()) {
    uint32_t Object = Key.second;
    switch (static_cast<PoolKind>(Key.first)) {
    case PoolKind::Package:
      Object = PkgMap[Object];
      break;
    case PoolKind::SimpleName:
      Object = SimpMap[Object];
      break;
    case PoolKind::ClassRefPool:
      Object = CMap[Object];
      break;
    case PoolKind::FieldName:
      Object = FldMap[Object];
      break;
    case PoolKind::MethodName:
      Object = MthMap[Object];
      break;
    case PoolKind::StringConst:
      Object = StrMap[Object];
      break;
    case PoolKind::FieldInstance:
    case PoolKind::FieldStatic:
      Object = FMap[Object];
      break;
    case PoolKind::MethodVirtual:
    case PoolKind::MethodSpecial:
    case PoolKind::MethodStatic:
    case PoolKind::MethodInterface:
      Object = MMap[Object];
      break;
    }
    Out.Stats.add(Key.first, Object, Count);
  }

  // Translate the lowered records through the same maps. Every id in a
  // record was interned into Plan.M, and every Plan.M entry is mapped,
  // so this is equivalent to re-lowering against M2 — without touching
  // the classfiles again.
  Out.Recs = std::move(Plan.Recs);
  for (ClassRec &R : Out.Recs) {
    R.ThisId = CMap[R.ThisId];
    if (R.HasSuper)
      R.SuperId = CMap[R.SuperId];
    for (uint32_t &Id : R.Interfaces)
      Id = CMap[Id];
    for (FieldRec &F : R.Fields) {
      F.RefId = FMap[F.RefId];
      if (F.Const.Kind == ConstKind::String)
        F.Const.Id = StrMap[F.Const.Id];
    }
    for (MethodRec &Mth : R.Methods) {
      Mth.RefId = MMap[Mth.RefId];
      for (uint32_t &Id : Mth.Exceptions)
        Id = CMap[Id];
      if (!Mth.Code)
        continue;
      for (CodeRec::Handler &H : Mth.Code->Table)
        if (H.HasCatch)
          H.CatchClass = CMap[H.CatchClass];
      for (CodeOperand &Operand : Mth.Code->Operands) {
        switch (Operand.Kind) {
        case ConstKind::String:
          Operand.Id = StrMap[Operand.Id];
          break;
        case ConstKind::ClassTarget:
          Operand.Id = CMap[Operand.Id];
          break;
        case ConstKind::Field:
          Operand.Id = FMap[Operand.Id];
          break;
        case ConstKind::Method:
          Operand.Id = MMap[Operand.Id];
          break;
        default:
          break;
        }
      }
    }
  }
  return Out;
}

/// The common archive header (shared by all format versions).
void writeArchiveHeader(ByteWriter &W, uint8_t Version,
                        const PackOptions &Options) {
  W.writeU4(0x434A504Bu); // "CJPK"
  W.writeU1(Version);
  W.writeU1(static_cast<uint8_t>(Options.Scheme));
  uint8_t Flags = 0;
  if (Options.CollapseOpcodes)
    Flags |= 1;
  if (Options.CompressStreams)
    Flags |= 2;
  if (Options.PreloadStandardRefs)
    Flags |= 4;
  // Bits 3..5 advertise the whole-archive backend choice; zlib (the
  // default) maps to 0, keeping historical archives bit-identical.
  if (Options.CompressStreams)
    Flags |= static_cast<uint8_t>(
        (Options.StreamBackends ? ArchiveBackendMixed
                                : archiveBackendCode(Options.Backend))
        << BackendFlagShift);
  W.writeU1(Flags);
}

} // namespace

size_t cjpack::autoShardCount(size_t ClassCount) {
  // Serial floor: below two shards' worth of classes the sharded
  // container's dictionary and per-shard stream headers cost more than
  // the parallelism buys, so stay on the single-shard format.
  if (ClassCount < 2 * AutoShardClassesPerShard)
    return 1;
  size_t ByWork = ClassCount / AutoShardClassesPerShard;
  size_t Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  return std::min({ByWork, Hw, MaxShards});
}

Expected<PackResult>
cjpack::packClasses(const std::vector<ClassFile> &Classes,
                    const PackOptions &Options) {
  // Validate attribute sets up front.
  for (const ClassFile &CF : Classes) {
    auto Check = [&](const std::vector<AttributeInfo> &Attrs) -> Error {
      for (const AttributeInfo &A : Attrs)
        if (!isRecognizedAttribute(A.Name))
          return makeError("pack: unrecognized attribute '" +
                           std::string(A.Name) +
                           "' (run prepareForPacking first)");
      return Error::success();
    };
    if (auto E = Check(CF.Attributes))
      return E;
    for (const MemberInfo &F : CF.Fields)
      if (auto E = Check(F.Attributes))
        return E;
    for (const MemberInfo &Mth : CF.Methods)
      if (auto E = Check(Mth.Attributes))
        return E;
  }

  std::vector<const ClassFile *> Ordered;
  if (Options.OrderForEagerLoading) {
    for (size_t I : eagerLoadOrder(Classes))
      Ordered.push_back(&Classes[I]);
  } else {
    for (const ClassFile &CF : Classes)
      Ordered.push_back(&CF);
  }

  // Shard assignment is by stable class order: contiguous, balanced
  // slices of the ordered list. Never let scheduling pick — the archive
  // must be a pure function of (input, options, shard count); Shards=0
  // delegates the count to the autotuner.
  size_t ShardCount =
      Options.Shards == 0 ? autoShardCount(Ordered.size()) : Options.Shards;
  ShardCount = std::min(ShardCount, std::max<size_t>(Ordered.size(), 1));
  ShardCount = std::min(ShardCount, MaxShards);

  PackResult Result;
  Result.ClassCount = Classes.size();

  // The random-access index addresses classes by internal name, so a
  // v3 archive cannot hold two classes with the same name. (v1/v2
  // archives can — they are positional — so this is checked only here.)
  if (Options.RandomAccessIndex) {
    std::set<std::string, std::less<>> Names;
    for (const ClassFile *CF : Ordered)
      if (!Names.emplace(CF->thisClassName()).second)
        return Error::failure("pack: duplicate class name '" +
                              std::string(CF->thisClassName()) +
                              "' not representable in an indexed archive");
  }

  if (ShardCount <= 1 && !Options.RandomAccessIndex) {
    // Original single-shard wire format, byte-identical to version 1.
    Stopwatch Timer;
    auto Plan = countShardPass(Ordered, Options);
    if (!Plan)
      return Plan.takeError();
    Result.Trace.Phases.ModelSec = Timer.seconds();

    Timer.restart();
    std::array<uint64_t, NumStreams> Items{};
    auto S = emitShardStreams(*Plan, /*Dict=*/nullptr, Options, &Items,
                              &Result.Trace.Coder);
    if (!S)
      return S.takeError();
    Result.Trace.Phases.EmitSec = Timer.seconds();
    Result.Trace.Shards.push_back({/*Shard=*/0, Ordered.size(),
                                   Result.Trace.Phases.ModelSec,
                                   Result.Trace.Phases.EmitSec});

    Timer.restart();
    ByteWriter W;
    writeArchiveHeader(W, FormatVersionSerial, Options);
    W.writeBytes(S->serialize(Options.backendPlan(), &Result.Sizes));
    Result.Sizes.Items = Items;
    Result.Archive = W.take();
    Result.Trace.Phases.DeflateSec = Timer.seconds();
    return Result;
  }

  std::vector<std::vector<const ClassFile *>> Slices(ShardCount);
  size_t Base = Ordered.size() / ShardCount;
  size_t Extra = Ordered.size() % ShardCount;
  size_t Next = 0;
  for (size_t K = 0; K < ShardCount; ++K) {
    size_t Len = Base + (K < Extra ? 1 : 0);
    Slices[K].assign(Ordered.begin() + Next, Ordered.begin() + Next + Len);
    Next += Len;
  }

  // Everything the pool tasks capture must be declared before the pool:
  // on an early error return the pool is destroyed first, and its
  // destructor drains still-queued tasks (a packaged_task future does
  // not block on destruction), so those tasks must find this state
  // alive. Telemetry slots are per-shard (each task writes only its own
  // index) and rolled up after the joins, so tracing adds no sharing.
  std::vector<ShardPlan> Plans;
  Plans.reserve(ShardCount);
  std::vector<ShardPlan> Emit(ShardCount);
  SharedDictionary Dict;
  std::vector<std::array<uint64_t, NumStreams>> ShardItems(ShardCount);
  std::vector<CoderTally> ShardTallies(ShardCount);
  Result.Trace.Shards.resize(ShardCount);
  for (size_t K = 0; K < ShardCount; ++K) {
    Result.Trace.Shards[K].Shard = K;
    Result.Trace.Shards[K].Classes = Slices[K].size();
  }

  ThreadPool Pool(Options.Threads);

  // Counting passes run one per shard, concurrently.
  Stopwatch ModelTimer;
  std::vector<std::future<Expected<ShardPlan>>> PlanFutures;
  PlanFutures.reserve(ShardCount);
  for (size_t K = 0; K < ShardCount; ++K)
    PlanFutures.push_back(Pool.submit([&Slices, &Options, &Result, K] {
      Stopwatch ShardTimer;
      auto Plan = countShardPass(Slices[K], Options);
      Result.Trace.Shards[K].ModelSec = ShardTimer.seconds();
      return Plan;
    }));
  for (auto &F : PlanFutures) {
    auto Plan = F.get();
    if (!Plan)
      return Plan.takeError();
    Plans.push_back(std::move(*Plan));
  }

  // Factor definitions shared by two or more shards into the
  // dictionary, so shards reference them instead of redefining them.
  // Schemes that cannot preload keep fully independent shards.
  if (refSchemeSupportsPreload(Options.Scheme)) {
    Model Standard;
    if (Options.PreloadStandardRefs) {
      NullRefEncoder Null;
      preloadStandardRefs(Standard, Null, Options.Scheme);
    }
    std::vector<const Model *> ShardModels;
    ShardModels.reserve(ShardCount);
    for (const ShardPlan &Plan : Plans)
      ShardModels.push_back(&Plan.M);
    Dict = buildSharedDictionary(
        ShardModels, Options.PreloadStandardRefs ? &Standard : nullptr);
  }
  Result.DictionaryEntries = Dict.entryCount();
  Result.Trace.Phases.ModelSec = ModelTimer.seconds();

  // Emitting passes, again one per shard, on models rebuilt around the
  // dictionary's id space.
  Stopwatch EmitTimer;
  std::vector<std::future<Expected<StreamSet>>> Futures;
  Futures.reserve(ShardCount);
  for (size_t K = 0; K < ShardCount; ++K)
    Futures.push_back(Pool.submit([&Plans, &Emit, &Dict, &Options, &Result,
                                   &ShardItems, &ShardTallies, K] {
      Stopwatch ShardTimer;
      Emit[K] = Dict.empty()
                    ? std::move(Plans[K])
                    : remapPlanForDictionary(std::move(Plans[K]), Dict,
                                             Options);
      auto S = emitShardStreams(Emit[K], Dict.empty() ? nullptr : &Dict,
                                Options, &ShardItems[K], &ShardTallies[K]);
      Result.Trace.Shards[K].EmitSec = ShardTimer.seconds();
      return S;
    }));

  std::vector<StreamSet> ShardStreams;
  ShardStreams.reserve(ShardCount);
  for (auto &F : Futures) {
    auto S = F.get();
    if (!S)
      return S.takeError();
    ShardStreams.push_back(std::move(*S));
  }
  Result.Trace.Phases.EmitSec = EmitTimer.seconds();

  Stopwatch DeflateTimer;
  ByteWriter W;
  if (Options.RandomAccessIndex) {
    // Version 3: header, per-class index, dictionary frame, then each
    // shard's streams serialized as an independent self-contained blob
    // (the v1 stream body), so a reader can inflate one shard without
    // touching the others. Per-blob compression costs a little ratio
    // versus v2's joint per-stream compression — that is the price of
    // random access.
    writeArchiveHeader(W, FormatVersionIndexed, Options);
    std::vector<std::vector<uint8_t>> Blobs;
    Blobs.reserve(ShardCount);
    ArchiveIndex Index;
    uint64_t Offset = 0;
    for (size_t K = 0; K < ShardCount; ++K) {
      StreamSizes BlobSizes;
      Blobs.push_back(
          ShardStreams[K].serialize(Options.backendPlan(), &BlobSizes));
      Result.Sizes.add(BlobSizes);
      Index.Shards.push_back({Offset, Blobs.back().size()});
      Offset += Blobs.back().size();
      for (size_t I = 0; I < Slices[K].size(); ++I)
        Index.Classes.push_back({std::string(Slices[K][I]->thisClassName()),
                                 static_cast<uint32_t>(K),
                                 static_cast<uint32_t>(I)});
    }
    std::vector<uint8_t> IndexBytes = Index.serialize();
    size_t IndexStart = W.size();
    writeVarUInt(W, IndexBytes.size());
    W.writeBytes(IndexBytes);
    Result.IndexBytes = W.size() - IndexStart;
    size_t DictStart = W.size();
    Dict.serialize(W, Options.CompressStreams);
    Result.DictionaryBytes = W.size() - DictStart;
    for (const std::vector<uint8_t> &B : Blobs)
      W.writeBytes(B);
  } else {
    writeArchiveHeader(W, FormatVersionSharded, Options);
    Dict.serialize(W, Options.CompressStreams);
    Result.DictionaryBytes = W.size() - 7;
    W.writeBytes(serializeShardedStreams(ShardStreams, Options.backendPlan(),
                                         &Result.Sizes));
  }
  Result.Archive = W.take();
  Result.Trace.Phases.DeflateSec = DeflateTimer.seconds();
  for (size_t K = 0; K < ShardCount; ++K) {
    for (unsigned I = 0; I < NumStreams; ++I)
      Result.Sizes.Items[I] += ShardItems[K][I];
    Result.Trace.Coder.add(ShardTallies[K]);
  }
  return Result;
}

namespace {

/// The StripUnreferenced gate: the packed archive must restore exactly
/// the stripped classes (order-independent byte comparison, since
/// packing may reorder) and stripping must not have introduced verifier
/// diagnostics beyond \p BaselineDiags.
Error verifyStrippedArchive(const std::vector<ClassFile> &Stripped,
                            const std::vector<uint8_t> &Archive,
                            unsigned Threads, size_t BaselineDiags) {
  auto Restored = unpackClasses(Archive, Threads);
  if (!Restored)
    return Error::failure("strip-unreferenced gate: archive does not "
                          "restore: " +
                          Restored.message());
  if (Restored->size() != Stripped.size())
    return Error::failure("strip-unreferenced gate: restored " +
                          std::to_string(Restored->size()) + " classes, "
                          "expected " +
                          std::to_string(Stripped.size()));
  std::vector<std::array<uint8_t, 20>> Want, Got;
  Want.reserve(Stripped.size());
  Got.reserve(Stripped.size());
  for (const ClassFile &CF : Stripped)
    Want.push_back(sha1Of(writeClassFile(CF)));
  size_t RestoredDiags = 0;
  for (const ClassFile &CF : *Restored) {
    Got.push_back(sha1Of(writeClassFile(CF)));
    RestoredDiags += analysis::verifyClass(CF).Diags.size();
  }
  std::sort(Want.begin(), Want.end());
  std::sort(Got.begin(), Got.end());
  if (Want != Got)
    return Error::failure("strip-unreferenced gate: restored classes "
                          "differ from the stripped input");
  if (RestoredDiags > BaselineDiags)
    return Error::failure("strip-unreferenced gate: stripping introduced " +
                          std::to_string(RestoredDiags - BaselineDiags) +
                          " verifier diagnostics");
  return Error::success();
}

} // namespace

Expected<PackResult>
cjpack::packClassBytes(const std::vector<NamedClass> &Classes,
                       const PackOptions &Options) {
  Stopwatch ParseTimer;
  std::vector<ClassFile> Parsed;
  Parsed.reserve(Classes.size());
  for (const NamedClass &C : Classes) {
    auto CF = parseClassFile(C.Data);
    if (!CF)
      return Error::failure(C.Name + ": " + CF.message());
    if (auto E = prepareForPacking(*CF))
      return Error::failure(C.Name + ": " + E.message());
    Parsed.push_back(std::move(*CF));
  }
  analysis::StripStats Strip;
  size_t BaselineDiags = 0;
  if (Options.StripUnreferenced) {
    for (const ClassFile &CF : Parsed)
      BaselineDiags += analysis::verifyClass(CF).Diags.size();
    auto Stats = analysis::stripUnreferencedMembers(Parsed);
    if (!Stats)
      return Error::failure("strip-unreferenced: " + Stats.message());
    Strip = *Stats;
  }
  double ParseSec = ParseTimer.seconds();
  auto Result = packClasses(Parsed, Options);
  if (Result && Options.StripUnreferenced) {
    if (auto E = verifyStrippedArchive(Parsed, Result->Archive,
                                       Options.Threads, BaselineDiags))
      return E;
    Result->StrippedFields = Strip.FieldsRemoved;
    Result->StrippedMethods = Strip.MethodsRemoved;
  }
  if (Result)
    Result->Trace.Phases.ParseSec = ParseSec;
  return Result;
}
