//===- Zlib.cpp - deflate/inflate wrappers --------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "zip/Zlib.h"
#include <zlib.h>

using namespace cjpack;

std::vector<uint8_t> cjpack::deflateBytes(std::span<const uint8_t> Data,
                                          int Level) {
  z_stream S{};
  // windowBits = -15 selects raw deflate (no zlib header/trailer).
  [[maybe_unused]] int Rc =
      deflateInit2(&S, Level, Z_DEFLATED, -15, 9, Z_DEFAULT_STRATEGY);
  assert(Rc == Z_OK && "deflateInit2 failed");
  std::vector<uint8_t> Out(deflateBound(&S, Data.size()));
  S.next_in = const_cast<Bytef *>(Data.data());
  S.avail_in = static_cast<uInt>(Data.size());
  S.next_out = Out.data();
  S.avail_out = static_cast<uInt>(Out.size());
  Rc = deflate(&S, Z_FINISH);
  assert(Rc == Z_STREAM_END && "deflate did not finish in one pass");
  Out.resize(S.total_out);
  deflateEnd(&S);
  return Out;
}

Expected<std::vector<uint8_t>>
cjpack::inflateBytes(std::span<const uint8_t> Data, size_t ExpectedSize,
                     size_t MaxOutput) {
  z_stream S{};
  if (inflateInit2(&S, -15) != Z_OK)
    return Error::failure("inflate: init failed");
  std::vector<uint8_t> Out;
  size_t Initial = ExpectedSize ? ExpectedSize : (Data.size() * 4 + 64);
  if (MaxOutput && Initial > MaxOutput)
    Initial = MaxOutput;
  // ExpectedSize comes off the wire; trusting it for the upfront
  // allocation would let a tiny lying header demand gigabytes. Cap the
  // preallocation by what the input could plausibly inflate to (deflate
  // tops out near 1032:1) and grow geometrically if it really is large.
  size_t Plausible = Data.size() * 1032 + 64;
  if (Initial > Plausible)
    Initial = Plausible;
  // One extra byte past the cap lets a bomb be detected: output landing
  // strictly beyond MaxOutput fails instead of growing unbounded.
  Out.resize(Initial + (MaxOutput ? 1 : 0));
  S.next_in = const_cast<Bytef *>(Data.data());
  S.avail_in = static_cast<uInt>(Data.size());
  size_t Written = 0;
  int Rc = Z_OK;
  while (true) {
    S.next_out = Out.data() + Written;
    S.avail_out = static_cast<uInt>(Out.size() - Written);
    Rc = inflate(&S, Z_NO_FLUSH);
    Written = Out.size() - S.avail_out;
    if (MaxOutput && Written > MaxOutput) {
      inflateEnd(&S);
      return makeError(ErrorCode::LimitExceeded,
                       "inflate: output exceeds declared size");
    }
    if (Rc == Z_STREAM_END)
      break;
    if (Rc == Z_OK || Rc == Z_BUF_ERROR) {
      if (S.avail_in == 0 && Rc == Z_BUF_ERROR) {
        inflateEnd(&S);
        return makeError(ErrorCode::Truncated,
                         "inflate: truncated deflate stream");
      }
      if (S.avail_out == 0) {
        size_t Grown = Out.size() * 2 + 64;
        if (MaxOutput && Grown > MaxOutput + 1)
          Grown = MaxOutput + 1;
        Out.resize(Grown);
      }
      continue;
    }
    inflateEnd(&S);
    return makeError(ErrorCode::Corrupt, "inflate: corrupt deflate stream");
  }
  inflateEnd(&S);
  Out.resize(Written);
  return Out;
}

uint32_t cjpack::crc32Of(std::span<const uint8_t> Data) {
  return static_cast<uint32_t>(
      crc32(0L, Data.data(), static_cast<uInt>(Data.size())));
}
