//===- Jar.h - the paper's jar-family baselines ----------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the archive baselines of §2 / Table 1:
///
///  * jar / sjar — ZIP of individually deflated classfiles (sjar is the
///    same after debug stripping + constant-pool canonicalization);
///  * sj0r — ZIP of stored (uncompressed) classfiles;
///  * sj0r.gz — an sj0r gzip'd as a whole, which lets the compressor see
///    across member boundaries (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ZIP_JAR_H
#define CJPACK_ZIP_JAR_H

#include "zip/ZipFile.h"

namespace cjpack {

/// A named classfile (raw bytes).
using NamedClass = ZipEntry;

/// jar: each member individually deflated.
std::vector<uint8_t> buildJar(const std::vector<NamedClass> &Classes);

/// j0r: members stored uncompressed.
std::vector<uint8_t> buildJ0r(const std::vector<NamedClass> &Classes);

/// j0r.gz: a stored archive gzip'd as a whole.
std::vector<uint8_t> buildJ0rGz(const std::vector<NamedClass> &Classes);

/// Sum of member sizes (the "individual files not compressed" column).
size_t totalClassBytes(const std::vector<NamedClass> &Classes);

} // namespace cjpack

#endif // CJPACK_ZIP_JAR_H
