//===- Zlib.h - deflate/inflate wrappers -----------------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrappers over zlib: raw deflate (no zlib/gzip framing, as used
/// inside zip members and the packed archive), inflate, and crc32. The
/// paper uses gzip and zlib interchangeably and excludes framing bytes
/// from its size accounting; raw deflate matches that accounting.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ZIP_ZLIB_H
#define CJPACK_ZIP_ZLIB_H

#include "support/Error.h"
#include <cstdint>
#include <span>
#include <vector>

namespace cjpack {

/// Compresses \p Data with raw deflate at \p Level (1..9).
std::vector<uint8_t> deflateBytes(std::span<const uint8_t> Data,
                                  int Level = 9);

/// Decompresses raw-deflate \p Data; \p ExpectedSize is a sizing hint
/// (0 when unknown). \p MaxOutput, when non-zero, is a hard cap on the
/// decompressed size: the moment output crosses it, inflation stops
/// with a LimitExceeded error, so a deflate bomb costs at most
/// MaxOutput bytes of memory. Callers that know the exact declared
/// size should pass it as both arguments.
Expected<std::vector<uint8_t>> inflateBytes(std::span<const uint8_t> Data,
                                            size_t ExpectedSize = 0,
                                            size_t MaxOutput = 0);

/// CRC-32 of \p Data (the zip/gzip polynomial).
uint32_t crc32Of(std::span<const uint8_t> Data);

} // namespace cjpack

#endif // CJPACK_ZIP_ZLIB_H
