//===- ZipFile.cpp - minimal ZIP (jar) reader/writer ----------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "zip/ZipFile.h"
#include "zip/Zlib.h"
#include <cstring>

using namespace cjpack;

// ZIP structures are little-endian, unlike everything else in this
// project; keep dedicated helpers here.
namespace {

void putU2(std::vector<uint8_t> &B, uint16_t V) {
  B.push_back(static_cast<uint8_t>(V));
  B.push_back(static_cast<uint8_t>(V >> 8));
}

void putU4(std::vector<uint8_t> &B, uint32_t V) {
  putU2(B, static_cast<uint16_t>(V));
  putU2(B, static_cast<uint16_t>(V >> 16));
}

uint16_t getU2(std::span<const uint8_t> B, size_t At) {
  return static_cast<uint16_t>(B[At] | B[At + 1] << 8);
}

uint32_t getU4(std::span<const uint8_t> B, size_t At) {
  return static_cast<uint32_t>(B[At]) |
         static_cast<uint32_t>(B[At + 1]) << 8 |
         static_cast<uint32_t>(B[At + 2]) << 16 |
         static_cast<uint32_t>(B[At + 3]) << 24;
}

constexpr uint32_t LocalHeaderSig = 0x04034b50;
constexpr uint32_t CentralHeaderSig = 0x02014b50;
constexpr uint32_t EndOfCentralSig = 0x06054b50;

} // namespace

std::vector<uint8_t> cjpack::writeZip(const std::vector<ZipEntry> &Entries,
                                      ZipMethod Method) {
  std::vector<uint8_t> Out;
  struct CentralRecord {
    std::string Name;
    uint32_t Crc, CompSize, RawSize, Offset;
    uint16_t Method;
  };
  std::vector<CentralRecord> Central;

  for (const ZipEntry &E : Entries) {
    uint32_t Crc = crc32Of(E.Data);
    std::vector<uint8_t> Comp;
    uint16_t UseMethod = static_cast<uint16_t>(Method);
    if (Method == ZipMethod::Deflated) {
      Comp = deflateBytes(E.Data);
      if (Comp.size() >= E.Data.size()) {
        // A real jar tool stores incompressible members.
        Comp = E.Data;
        UseMethod = static_cast<uint16_t>(ZipMethod::Stored);
      }
    } else {
      Comp = E.Data;
    }

    uint32_t Offset = static_cast<uint32_t>(Out.size());
    putU4(Out, LocalHeaderSig);
    putU2(Out, 20);        // version needed
    putU2(Out, 0);         // flags
    putU2(Out, UseMethod);
    putU2(Out, 0);         // mod time
    putU2(Out, 0);         // mod date
    putU4(Out, Crc);
    putU4(Out, static_cast<uint32_t>(Comp.size()));
    putU4(Out, static_cast<uint32_t>(E.Data.size()));
    putU2(Out, static_cast<uint16_t>(E.Name.size()));
    putU2(Out, 0); // extra length
    Out.insert(Out.end(), E.Name.begin(), E.Name.end());
    Out.insert(Out.end(), Comp.begin(), Comp.end());

    Central.push_back({E.Name, Crc, static_cast<uint32_t>(Comp.size()),
                       static_cast<uint32_t>(E.Data.size()), Offset,
                       UseMethod});
  }

  uint32_t CentralStart = static_cast<uint32_t>(Out.size());
  for (const CentralRecord &C : Central) {
    putU4(Out, CentralHeaderSig);
    putU2(Out, 20); // version made by
    putU2(Out, 20); // version needed
    putU2(Out, 0);  // flags
    putU2(Out, C.Method);
    putU2(Out, 0); // time
    putU2(Out, 0); // date
    putU4(Out, C.Crc);
    putU4(Out, C.CompSize);
    putU4(Out, C.RawSize);
    putU2(Out, static_cast<uint16_t>(C.Name.size()));
    putU2(Out, 0); // extra
    putU2(Out, 0); // comment
    putU2(Out, 0); // disk number
    putU2(Out, 0); // internal attrs
    putU4(Out, 0); // external attrs
    putU4(Out, C.Offset);
    Out.insert(Out.end(), C.Name.begin(), C.Name.end());
  }
  uint32_t CentralSize = static_cast<uint32_t>(Out.size()) - CentralStart;

  putU4(Out, EndOfCentralSig);
  putU2(Out, 0); // disk number
  putU2(Out, 0); // central dir disk
  putU2(Out, static_cast<uint16_t>(Central.size()));
  putU2(Out, static_cast<uint16_t>(Central.size()));
  putU4(Out, CentralSize);
  putU4(Out, CentralStart);
  putU2(Out, 0); // comment length
  return Out;
}

Expected<std::vector<ZipEntry>>
cjpack::readZip(std::span<const uint8_t> Bytes,
                const DecodeLimits &Limits) {
  // Find the end-of-central-directory record (no comment support needed
  // for archives we produce, but scan backwards anyway to be tolerant).
  if (Bytes.size() < 22)
    return makeError(ErrorCode::Truncated, "zip: too small");
  size_t EocdAt = Bytes.size();
  for (size_t At = Bytes.size() - 22; ; --At) {
    if (getU4(Bytes, At) == EndOfCentralSig) {
      EocdAt = At;
      break;
    }
    if (At == 0)
      break;
  }
  if (EocdAt == Bytes.size())
    return makeError(ErrorCode::Corrupt,
                     "zip: missing end-of-central-directory");

  uint16_t Count = getU2(Bytes, EocdAt + 10);
  uint32_t CentralSize = getU4(Bytes, EocdAt + 12);
  uint32_t CentralStart = getU4(Bytes, EocdAt + 16);
  // The directory must lie wholly inside the file, before the EOCD
  // record, and be large enough for the claimed entry count (each entry
  // costs at least a 46-byte fixed header).
  if (CentralStart > EocdAt || CentralSize > EocdAt - CentralStart)
    return makeError(ErrorCode::Corrupt,
                     "zip: central directory outside file bounds");
  if (Count > Limits.MaxZipEntries)
    return makeError(ErrorCode::LimitExceeded, "zip: too many entries");
  if (static_cast<uint64_t>(Count) * 46 > CentralSize)
    return makeError(ErrorCode::Corrupt,
                     "zip: entry count exceeds directory size");

  DecodeBudget Budget(Limits);
  std::vector<ZipEntry> Entries;
  size_t At = CentralStart;
  for (uint16_t I = 0; I < Count; ++I) {
    if (At + 46 > Bytes.size() || getU4(Bytes, At) != CentralHeaderSig)
      return makeError(ErrorCode::Corrupt,
                       "zip: corrupt central directory at byte " +
                           std::to_string(At));
    uint16_t Method = getU2(Bytes, At + 10);
    uint32_t Crc = getU4(Bytes, At + 16);
    uint32_t CompSize = getU4(Bytes, At + 20);
    uint32_t RawSize = getU4(Bytes, At + 24);
    uint16_t NameLen = getU2(Bytes, At + 28);
    uint16_t ExtraLen = getU2(Bytes, At + 30);
    uint16_t CommentLen = getU2(Bytes, At + 32);
    uint32_t LocalOffset = getU4(Bytes, At + 42);
    if (At + 46 + NameLen > Bytes.size())
      return makeError(ErrorCode::Truncated,
                       "zip: truncated central entry name");
    std::string Name(reinterpret_cast<const char *>(&Bytes[At + 46]),
                     NameLen);
    At += 46u + NameLen + ExtraLen + CommentLen;

    // Local header: validate the offset before seeking, then skip its
    // (possibly different) name/extra lengths.
    if (static_cast<uint64_t>(LocalOffset) + 30 > Bytes.size() ||
        getU4(Bytes, LocalOffset) != LocalHeaderSig)
      return makeError(ErrorCode::Corrupt,
                       "zip: corrupt local header for " + Name);
    uint16_t LocalNameLen = getU2(Bytes, LocalOffset + 26);
    uint16_t LocalExtraLen = getU2(Bytes, LocalOffset + 28);
    uint64_t DataAt = LocalOffset + 30u + LocalNameLen + LocalExtraLen;
    if (DataAt + CompSize > Bytes.size())
      return makeError(ErrorCode::Truncated,
                       "zip: truncated member data for " + Name);
    if (auto E = Budget.chargeInflate(RawSize, "zip"))
      return E;

    std::span<const uint8_t> Comp =
        Bytes.subspan(static_cast<size_t>(DataAt), CompSize);
    ZipEntry E;
    E.Name = std::move(Name);
    if (Method == static_cast<uint16_t>(ZipMethod::Stored)) {
      if (CompSize != RawSize)
        return makeError(ErrorCode::Corrupt,
                         "zip: stored member size mismatch for " + E.Name);
      E.Data.assign(Comp.begin(), Comp.end());
    } else if (Method == static_cast<uint16_t>(ZipMethod::Deflated)) {
      // MaxOutput 0 would mean "uncapped"; a declared-empty member still
      // gets a one-byte cap so a lying header cannot expand unbounded.
      auto Raw = inflateBytes(Comp, RawSize, RawSize ? RawSize : 1);
      if (!Raw)
        return Raw.takeError();
      if (Raw->size() != RawSize)
        return makeError(ErrorCode::Corrupt,
                         "zip: deflated member size mismatch for " + E.Name);
      E.Data = std::move(*Raw);
    } else {
      return makeError(ErrorCode::Corrupt,
                       "zip: unsupported method for " + E.Name);
    }
    if (crc32Of(E.Data) != Crc)
      return makeError(ErrorCode::Corrupt, "zip: crc mismatch for " + E.Name);
    Entries.push_back(std::move(E));
  }
  return Entries;
}

std::vector<uint8_t> cjpack::gzipBytes(std::span<const uint8_t> Data) {
  std::vector<uint8_t> Out = {0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255};
  std::vector<uint8_t> Comp = deflateBytes(Data);
  Out.insert(Out.end(), Comp.begin(), Comp.end());
  putU4(Out, crc32Of(Data));
  putU4(Out, static_cast<uint32_t>(Data.size()));
  return Out;
}

Expected<std::vector<uint8_t>>
cjpack::gunzipBytes(std::span<const uint8_t> Data,
                    const DecodeLimits &Limits) {
  if (Data.size() < 18 || Data[0] != 0x1f || Data[1] != 0x8b || Data[2] != 8)
    return makeError(ErrorCode::Corrupt, "gzip: bad header");
  if (Data[3] != 0)
    return makeError(ErrorCode::Corrupt, "gzip: flags not supported");
  uint32_t Crc = getU4(Data, Data.size() - 8);
  uint32_t Size = getU4(Data, Data.size() - 4);
  if (Size > Limits.MaxInflateBytes)
    return makeError(ErrorCode::LimitExceeded,
                     "gzip: declared size over inflate budget");
  std::span<const uint8_t> Comp = Data.subspan(10, Data.size() - 18);
  // The trailer's size field caps inflation, so a lying frame fails
  // instead of expanding unbounded (declared-empty frames get a
  // one-byte cap: MaxOutput 0 would mean "uncapped").
  auto Raw = inflateBytes(Comp, Size, Size ? Size : 1);
  if (!Raw)
    return Raw.takeError();
  if (Raw->size() != Size || crc32Of(*Raw) != Crc)
    return makeError(ErrorCode::Corrupt, "gzip: trailer mismatch");
  return Raw;
}
