//===- Jar.cpp - the paper's jar-family baselines -------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "zip/Jar.h"

using namespace cjpack;

std::vector<uint8_t>
cjpack::buildJar(const std::vector<NamedClass> &Classes) {
  return writeZip(Classes, ZipMethod::Deflated);
}

std::vector<uint8_t>
cjpack::buildJ0r(const std::vector<NamedClass> &Classes) {
  return writeZip(Classes, ZipMethod::Stored);
}

std::vector<uint8_t>
cjpack::buildJ0rGz(const std::vector<NamedClass> &Classes) {
  return gzipBytes(buildJ0r(Classes));
}

size_t cjpack::totalClassBytes(const std::vector<NamedClass> &Classes) {
  size_t Total = 0;
  for (const NamedClass &C : Classes)
    Total += C.Data.size();
  return Total;
}
