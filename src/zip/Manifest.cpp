//===- Manifest.cpp - jar manifests and the §12 signing workflow ----------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "zip/Manifest.h"
#include "support/Sha1.h"

using namespace cjpack;

const ManifestEntry *Manifest::find(const std::string &Name) const {
  for (const ManifestEntry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

Manifest cjpack::buildManifest(const std::vector<NamedClass> &Classes) {
  Manifest M;
  M.Entries.reserve(Classes.size());
  for (const NamedClass &C : Classes)
    M.Entries.push_back({C.Name, sha1Hex(C.Data)});
  return M;
}

std::string cjpack::writeManifest(const Manifest &M) {
  std::string Out = "Manifest-Version: " + M.Version + "\n\n";
  for (const ManifestEntry &E : M.Entries) {
    Out += "Name: " + E.Name + "\n";
    Out += "SHA1-Digest: " + E.Sha1Digest + "\n\n";
  }
  return Out;
}

Expected<Manifest> cjpack::parseManifest(const std::string &Text) {
  Manifest M;
  std::string PendingName;
  size_t At = 0;
  auto NextLine = [&](std::string &Line) {
    if (At >= Text.size())
      return false;
    size_t End = Text.find('\n', At);
    if (End == std::string::npos)
      End = Text.size();
    Line = Text.substr(At, End - At);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    At = End + 1;
    return true;
  };
  std::string Line;
  while (NextLine(Line)) {
    if (Line.empty())
      continue;
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      return Error::failure("manifest: malformed line '" + Line + "'");
    std::string Key = Line.substr(0, Colon);
    std::string Value = Line.substr(Colon + 2);
    if (Key == "Manifest-Version") {
      M.Version = Value;
    } else if (Key == "Name") {
      PendingName = Value;
    } else if (Key == "SHA1-Digest") {
      if (PendingName.empty())
        return Error::failure("manifest: digest without a Name");
      M.Entries.push_back({PendingName, Value});
      PendingName.clear();
    } else {
      // Unknown attributes are legal in manifests; skip them.
    }
  }
  return M;
}

bool cjpack::verifyManifest(const Manifest &M,
                            const std::vector<NamedClass> &Classes) {
  for (const NamedClass &C : Classes) {
    const ManifestEntry *E = M.find(C.Name);
    if (!E || E->Sha1Digest != sha1Hex(C.Data))
      return false;
  }
  return true;
}
