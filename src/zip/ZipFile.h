//===- ZipFile.h - minimal ZIP (jar) reader/writer -------------*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal but standards-conforming ZIP archive layer: local file
/// headers, central directory, end-of-central-directory record, with
/// stored and deflate member compression. This is the substrate for the
/// paper's baselines: a jar file is a ZIP of individually deflated
/// classfiles; a "j0r" is a ZIP of stored (uncompressed) members.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ZIP_ZIPFILE_H
#define CJPACK_ZIP_ZIPFILE_H

#include "support/DecodeLimits.h"
#include "support/Error.h"
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cjpack {

/// One member of an archive.
struct ZipEntry {
  std::string Name;
  std::vector<uint8_t> Data; ///< uncompressed contents
};

/// How members are stored in a zip.
enum class ZipMethod : uint16_t {
  Stored = 0,
  Deflated = 8,
};

/// Builds a ZIP archive of \p Entries, compressing every member with
/// \p Method.
std::vector<uint8_t> writeZip(const std::vector<ZipEntry> &Entries,
                              ZipMethod Method);

/// Parses a ZIP archive into entries (via the central directory).
///
/// Hostile-input contract: every central-directory offset and size is
/// validated against the file size before it is used to seek, member
/// inflation is capped by the declared uncompressed size, and the total
/// decompressed output is charged against \p Limits.MaxInflateBytes, so
/// a crafted archive yields a typed Error rather than an overread or a
/// decompression bomb. \p Bytes is borrowed for the duration of the
/// call only; member payloads are inflated (or copied, when stored)
/// straight from slices of it, with no whole-member staging copy.
Expected<std::vector<ZipEntry>> readZip(std::span<const uint8_t> Bytes,
                                        const DecodeLimits &Limits = {});

/// Wraps \p Data in a gzip frame (header + deflate + crc/size trailer).
std::vector<uint8_t> gzipBytes(std::span<const uint8_t> Data);

/// Unwraps a gzip frame, validating magic and crc; inflation is capped
/// by the trailer's declared size, which must itself fit in
/// \p Limits.MaxInflateBytes (the trailer is attacker-controlled).
Expected<std::vector<uint8_t>> gunzipBytes(std::span<const uint8_t> Data,
                                           const DecodeLimits &Limits = {});

} // namespace cjpack

#endif // CJPACK_ZIP_ZIPFILE_H
