//===- Sha1.cpp - SHA-1 digest ---------------------------------------------===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Sha1.h"
#include <cstring>

using namespace cjpack;

void Sha1::reset() {
  H[0] = 0x67452301;
  H[1] = 0xEFCDAB89;
  H[2] = 0x98BADCFE;
  H[3] = 0x10325476;
  H[4] = 0xC3D2E1F0;
  BufferLen = 0;
  TotalBits = 0;
}

static uint32_t rotl(uint32_t V, unsigned N) {
  return V << N | V >> (32 - N);
}

void Sha1::processBlock(const uint8_t *Block) {
  uint32_t W[80];
  for (int T = 0; T < 16; ++T)
    W[T] = static_cast<uint32_t>(Block[T * 4]) << 24 |
           static_cast<uint32_t>(Block[T * 4 + 1]) << 16 |
           static_cast<uint32_t>(Block[T * 4 + 2]) << 8 |
           static_cast<uint32_t>(Block[T * 4 + 3]);
  for (int T = 16; T < 80; ++T)
    W[T] = rotl(W[T - 3] ^ W[T - 8] ^ W[T - 14] ^ W[T - 16], 1);

  uint32_t A = H[0], B = H[1], C = H[2], D = H[3], E = H[4];
  for (int T = 0; T < 80; ++T) {
    uint32_t F, K;
    if (T < 20) {
      F = (B & C) | (~B & D);
      K = 0x5A827999;
    } else if (T < 40) {
      F = B ^ C ^ D;
      K = 0x6ED9EBA1;
    } else if (T < 60) {
      F = (B & C) | (B & D) | (C & D);
      K = 0x8F1BBCDC;
    } else {
      F = B ^ C ^ D;
      K = 0xCA62C1D6;
    }
    uint32_t Temp = rotl(A, 5) + F + E + W[T] + K;
    E = D;
    D = C;
    C = rotl(B, 30);
    B = A;
    A = Temp;
  }
  H[0] += A;
  H[1] += B;
  H[2] += C;
  H[3] += D;
  H[4] += E;
}

void Sha1::update(const uint8_t *Data, size_t Len) {
  TotalBits += static_cast<uint64_t>(Len) * 8;
  while (Len > 0) {
    size_t Take = std::min(Len, sizeof(Buffer) - BufferLen);
    std::memcpy(Buffer + BufferLen, Data, Take);
    BufferLen += Take;
    Data += Take;
    Len -= Take;
    if (BufferLen == sizeof(Buffer)) {
      processBlock(Buffer);
      BufferLen = 0;
    }
  }
}

std::array<uint8_t, 20> Sha1::finish() {
  uint64_t Bits = TotalBits;
  uint8_t Pad = 0x80;
  update(&Pad, 1);
  uint8_t Zero = 0;
  while (BufferLen != 56)
    update(&Zero, 1);
  uint8_t LenBytes[8];
  for (int I = 0; I < 8; ++I)
    LenBytes[I] = static_cast<uint8_t>(Bits >> (56 - I * 8));
  // Bypass update()'s bit counting for the length field.
  std::memcpy(Buffer + 56, LenBytes, 8);
  processBlock(Buffer);
  BufferLen = 0;

  std::array<uint8_t, 20> Out;
  for (int I = 0; I < 5; ++I)
    for (int J = 0; J < 4; ++J)
      Out[static_cast<size_t>(I * 4 + J)] =
          static_cast<uint8_t>(H[I] >> (24 - J * 8));
  return Out;
}

std::array<uint8_t, 20> cjpack::sha1Of(const std::vector<uint8_t> &Data) {
  Sha1 S;
  S.update(Data);
  return S.finish();
}

std::string cjpack::sha1Hex(const std::vector<uint8_t> &Data) {
  static const char *Hex = "0123456789abcdef";
  std::array<uint8_t, 20> Digest = sha1Of(Data);
  std::string Out;
  Out.reserve(40);
  for (uint8_t B : Digest) {
    Out.push_back(Hex[B >> 4]);
    Out.push_back(Hex[B & 0xF]);
  }
  return Out;
}
