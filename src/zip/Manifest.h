//===- Manifest.h - jar manifests and the §12 signing workflow -*- C++ -*-===//
//
// Part of cjpack. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Jar manifests with per-entry digests, and the §12 workflow: packing
/// renumbers constant pools, so signatures over the *original*
/// classfiles would not verify after decompression. The paper's fix:
/// compress, then decompress, sign the decompressed classfiles, and
/// ship that manifest with the packed archive — deterministic
/// decompression (§12) guarantees the receiver reproduces the exact
/// bytes the digests cover.
///
//===----------------------------------------------------------------------===//

#ifndef CJPACK_ZIP_MANIFEST_H
#define CJPACK_ZIP_MANIFEST_H

#include "support/Error.h"
#include "zip/Jar.h"
#include <string>
#include <vector>

namespace cjpack {

/// One manifest entry: a member name and its SHA-1 digest (hex).
struct ManifestEntry {
  std::string Name;
  std::string Sha1Digest;
};

/// A minimal jar manifest.
struct Manifest {
  std::string Version = "1.0";
  std::vector<ManifestEntry> Entries;

  const ManifestEntry *find(const std::string &Name) const;
};

/// Digests every member of \p Classes.
Manifest buildManifest(const std::vector<NamedClass> &Classes);

/// Serializes in MANIFEST.MF style (Name/SHA1-Digest attribute pairs).
std::string writeManifest(const Manifest &M);

/// Parses text produced by writeManifest (tolerates \r\n).
Expected<Manifest> parseManifest(const std::string &Text);

/// True if every class matches its manifest digest and no class is
/// missing from the manifest.
bool verifyManifest(const Manifest &M,
                    const std::vector<NamedClass> &Classes);

} // namespace cjpack

#endif // CJPACK_ZIP_MANIFEST_H
